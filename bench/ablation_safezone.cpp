// E8: safe-zone margin ablation (SII.B / SIV.A: "the safe zone varies
// based on the harvested energy").  Sweeps the Th_Safe - Th_Bk margin and
// reports avoided NVM writes and PDP for the DIAC-Optimized runtime.
#include <iostream>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace diac;
  using namespace diac::units;
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const Netlist nl = build_benchmark("s1238");
  DiacSynthesizer synth(nl, lib);
  const auto sr = synth.synthesize_scheme(Scheme::kDiacOptimized);
  const auto sr_plain = synth.synthesize_scheme(Scheme::kDiac);
  const RfidBurstSource source(0x5AFE);

  std::cout << "=== Safe-zone margin sweep (s1238, DIAC designs) ===\n\n";
  Table t({"margin [mJ]", "scheme", "backups", "safe-zone saves",
           "NVM writes", "PDP [mJ*s]", "instances"});
  for (double margin_mJ : {0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0}) {
    FsmConfig cfg;
    cfg.safe_margin = margin_mJ * mJ;
    for (const auto* d : {&sr_plain, &sr}) {
      SimulatorOptions opt;
      opt.target_instances = 8;
      opt.max_time = 30000;
      SystemSimulator sim(d->design, source, cfg, opt);
      const RunStats s = sim.run();
      t.add_row({Table::num(margin_mJ, 1), to_string(d->design.scheme),
                 std::to_string(s.backups),
                 std::to_string(s.safe_zone_saves),
                 std::to_string(s.nvm_writes), Table::num(as_mJ(s.pdp()), 1),
                 std::to_string(s.instances_completed)});
    }
    t.add_rule();
  }
  std::cout << t.str() << "\n";
  std::cout << "expectation: with a 0 margin the optimized runtime "
               "degenerates to plain DIAC; growing margins convert more "
               "backups into safe-zone saves (fewer NVM writes) until the "
               "margin eats into the operating range.\n";
  return 0;
}
