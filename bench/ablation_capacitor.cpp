// E9: storage-size ablation around assumption (1) of SIV.C: "there is
// never enough energy in the system to complete an instance".  Sweeps the
// capacitor size; small stores force many charge cycles per instance
// (where DIAC's sparse commits shine), large stores approach
// single-charge execution.
#include <iostream>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace diac;
  using namespace diac::units;
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const Netlist nl = build_benchmark("s1238");

  std::cout << "=== Capacitor-size sweep (s1238; instance energy fixed at "
               "40 mJ) ===\n\n";
  Table t({"C [mF]", "E_MAX [mJ]", "instance/E_MAX", "NV-Based PDP",
           "DIAC-Opt PDP", "DIAC-Opt gain", "interrupts", "saves"});
  for (double c_mF : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0}) {
    // Keep the *absolute* instance energy fixed at the paper's 40 mJ by
    // adjusting rho to the changed E_MAX (rho must stay > 1).
    const double e_max = 0.5 * (c_mF * mF) * 5.0 * 5.0;
    const double rho = 40.0 * mJ / e_max;
    if (rho <= 1.05) break;  // assumption (1) would no longer hold
    SynthesisOptions so;
    so.e_max = e_max;
    so.instance_rho = rho;
    DiacSynthesizer synth(nl, lib, so);
    const RfidBurstSource source(0xCA9);

    RunStats nvb, opt_stats;
    int interrupts = 0, saves = 0;
    for (Scheme scheme : {Scheme::kNvBased, Scheme::kDiacOptimized}) {
      const auto sr = synth.synthesize_scheme(scheme);
      SimulatorOptions opt;
      opt.capacitance = c_mF * mF;
      opt.voltage = 5.0;
      opt.target_instances = 8;
      opt.max_time = 40000;
      SystemSimulator sim(sr.design, source, FsmConfig{}, opt);
      const RunStats s = sim.run();
      if (scheme == Scheme::kNvBased) {
        nvb = s;
      } else {
        opt_stats = s;
        interrupts = s.power_interrupts;
        saves = s.safe_zone_saves;
      }
    }
    const double gain =
        nvb.pdp() > 0 ? 1.0 - opt_stats.pdp() / nvb.pdp() : 0.0;
    t.add_row({Table::num(c_mF, 1), Table::num(as_mJ(e_max), 1),
               Table::num(rho, 2), Table::num(as_mJ(nvb.pdp()), 1),
               Table::num(as_mJ(opt_stats.pdp()), 1), Table::pct(gain),
               std::to_string(interrupts), std::to_string(saves)});
  }
  std::cout << t.str() << "\n";
  std::cout << "expectation: smaller stores -> more charge cycles per "
               "instance -> more NVM traffic for the checkpoint baselines "
               "-> larger DIAC advantage.\n";
  return 0;
}
