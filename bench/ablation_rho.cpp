// Instance-pressure sweep around assumption (1) of SIV.C.
//
// rho = instance energy / E_MAX controls how many charge cycles one
// instance spans.  The paper *requires* rho > 1 ("there is never enough
// energy in the system to complete a process"); this sweep quantifies how
// the DIAC advantage scales as instances grow from barely-larger-than-
// storage to many charge cycles (the s27-style rerun-until-it-exceeds-
// capacity construction).
#include <iostream>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace diac;
  using namespace diac::units;
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const Netlist nl = build_benchmark("s1238");

  std::cout << "=== Instance-pressure sweep (s1238, E_MAX = 25 mJ) ===\n\n";
  Table t({"rho", "instance [mJ]", "tasks", "commits", "NV-Based PDP",
           "DIAC-Opt PDP", "gain", "writes NVB", "writes Opt"});
  for (double rho : {1.1, 1.3, 1.6, 2.0, 2.6, 3.2}) {
    SynthesisOptions so;
    so.instance_rho = rho;
    DiacSynthesizer synth(nl, lib, so);
    const RfidBurstSource source(0x4D0);

    RunStats nvb, opt;
    std::size_t tasks = 0, commits = 0;
    for (Scheme scheme : {Scheme::kNvBased, Scheme::kDiacOptimized}) {
      const auto sr = synth.synthesize_scheme(scheme);
      if (scheme == Scheme::kDiacOptimized) {
        tasks = sr.design.tree.size();
        commits = sr.replacement.points.size();
      }
      SimulatorOptions simo;
      simo.target_instances = 8;
      simo.max_time = 40000;
      SystemSimulator sim(sr.design, source, FsmConfig{}, simo);
      (scheme == Scheme::kNvBased ? nvb : opt) = sim.run();
    }
    const double gain = nvb.pdp() > 0 ? 1.0 - opt.pdp() / nvb.pdp() : 0.0;
    t.add_row({Table::num(rho, 1), Table::num(rho * 25.0, 1),
               std::to_string(tasks), std::to_string(commits),
               Table::num(as_mJ(nvb.pdp()), 1), Table::num(as_mJ(opt.pdp()), 1),
               Table::pct(gain), std::to_string(nvb.nvm_writes),
               std::to_string(opt.nvm_writes)});
  }
  std::cout << t.str() << "\n";
  std::cout << "expectation: larger instances mean more task boundaries "
               "per instance, so the checkpoint baselines write more and "
               "the DIAC gain grows with rho.\n";
  return 0;
}
