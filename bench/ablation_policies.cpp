// E7: the policy trade-off (SIII.A) — Policy1 (resiliency) vs Policy2
// (efficiency) vs Policy3 (balanced), measured end to end: task
// granularity, dispatch overhead, atomic-operation feasibility, and PDP.
#include <iostream>

#include "diac/synthesizer.hpp"
#include "metrics/pdp.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace diac;
  using namespace diac::units;
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const std::vector<std::string> circuits = {"s820", "s1238", "b12"};

  std::cout << "=== Policy ablation: resiliency vs efficiency ===\n\n";
  for (const auto& name : circuits) {
    const Netlist nl = build_benchmark(name);
    std::cout << "--- " << name << " (" << nl.logic_gate_count()
              << " gates) ---\n";
    Table t({"policy", "tasks", "max task [mJ]", "avg task [mJ]",
             "commit points", "PDP [mJ*s]", "aborts", "re-executed"});
    for (PolicyKind policy : {PolicyKind::kPolicy1, PolicyKind::kPolicy2,
                              PolicyKind::kPolicy3}) {
      SynthesisOptions so;
      so.policy = policy;
      DiacSynthesizer synth(nl, lib, so);
      const auto sr = synth.synthesize_scheme(Scheme::kDiacOptimized);
      const RfidBurstSource source(0xAB1E + benchmark_spec(name).seed);
      SimulatorOptions opt;
      opt.target_instances = 8;
      opt.max_time = 30000;
      SystemSimulator sim(sr.design, source, FsmConfig{}, opt);
      const RunStats s = sim.run();
      const TaskTree& tree = sr.design.tree;
      t.add_row({to_string(policy), std::to_string(tree.size()),
                 Table::num(as_mJ(sr.design.scale * tree.max_node_energy()), 2),
                 Table::num(as_mJ(sr.design.scale * tree.avg_node_energy()), 2),
                 std::to_string(sr.replacement.points.size()),
                 Table::num(as_mJ(s.pdp()), 1),
                 std::to_string(s.task_aborts),
                 std::to_string(s.tasks_reexecuted)});
    }
    std::cout << t.str() << "\n";
  }
  std::cout << "expectation: Policy1 -> most tasks (finest atomic ops, "
               "best resiliency, highest dispatch overhead); Policy2 -> "
               "fewest tasks (best efficiency, large atomic ops need more "
               "stored energy); Policy3 balances both.\n";
  return 0;
}
