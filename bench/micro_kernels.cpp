// Google-benchmark micro-kernels for the framework's hot paths: netlist
// synthesis, tree generation, policy transforms, NVM insertion, logic
// simulation and the system simulator.  These document the tool's own
// runtime cost (the "efficient, precise, automated design tool" claim of
// SIII.A).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <list>

#include "diac/synthesizer.hpp"
#include "serve/cache.hpp"
#include "metrics/montecarlo.hpp"
#include "metrics/trace_sweep.hpp"
#include "netlist/generators.hpp"
#include "netlist/logic_sim.hpp"
#include "netlist/suite.hpp"
#include "netlist/transforms.hpp"
#include "power/trace_io.hpp"
#include "runtime/simulator.hpp"
#include "search/engine.hpp"
#include "shard/coordinator.hpp"
#include "shard/merge.hpp"
#include "shard/worker.hpp"
#include "verify/equivalence.hpp"

namespace {

using namespace diac;

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::nominal_45nm();
  return l;
}

const Netlist& circuit(const std::string& name) {
  static std::list<std::pair<std::string, Netlist>> cache;
  for (const auto& [n, nl] : cache) {
    if (n == name) return nl;
  }
  cache.emplace_back(name, build_benchmark(name));
  return cache.back().second;
}

void BM_BuildBenchmark(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_benchmark(name));
  }
}
BENCHMARK_CAPTURE(BM_BuildBenchmark, s1238, std::string("s1238"));
BENCHMARK_CAPTURE(BM_BuildBenchmark, b14, std::string("b14"));
BENCHMARK_CAPTURE(BM_BuildBenchmark, s38417, std::string("s38417"));

void BM_InitialTree(benchmark::State& state, const std::string& name) {
  const Netlist& nl = circuit(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(initial_tree(nl, lib()));
  }
}
BENCHMARK_CAPTURE(BM_InitialTree, s1238, std::string("s1238"));
BENCHMARK_CAPTURE(BM_InitialTree, b14, std::string("b14"));

void BM_Policy3(benchmark::State& state, const std::string& name) {
  const Netlist& nl = circuit(name);
  const TaskTree tree = initial_tree(nl, lib());
  PolicyLimits limits;
  limits.scale = 40.0e-3 / tree.total_energy();
  limits.upper = 0.75e-3;
  limits.lower = 0.6e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apply_policy(tree, PolicyKind::kPolicy3, limits));
  }
}
BENCHMARK_CAPTURE(BM_Policy3, s1238, std::string("s1238"));
BENCHMARK_CAPTURE(BM_Policy3, b14, std::string("b14"));

void BM_NvmInsertion(benchmark::State& state) {
  const Netlist& nl = circuit("s1238");
  DiacSynthesizer synth(nl, lib());
  TaskTree tree = synth.transformed_tree();
  ReplacementOptions ro;
  ro.scale = 40.0e-3 / tree.total_energy();
  ro.budget = 6.25e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(insert_nvm(tree, ro));
  }
}
BENCHMARK(BM_NvmInsertion);

void BM_FullSynthesis(benchmark::State& state, const std::string& name) {
  const Netlist& nl = circuit(name);
  for (auto _ : state) {
    DiacSynthesizer synth(nl, lib());
    benchmark::DoNotOptimize(synth.synthesize());
  }
}
BENCHMARK_CAPTURE(BM_FullSynthesis, s1238, std::string("s1238"));
BENCHMARK_CAPTURE(BM_FullSynthesis, s38417, std::string("s38417"));

void BM_LogicSimStep(benchmark::State& state, const std::string& name) {
  const Netlist& nl = circuit(name);
  LogicSimulator sim(nl);
  for (GateId in : nl.inputs()) sim.set_input(in, 0x123456789ABCDEFULL);
  for (auto _ : state) {
    sim.step();
    benchmark::DoNotOptimize(sim.fingerprint());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nl.logic_gate_count()));
}
BENCHMARK_CAPTURE(BM_LogicSimStep, s1238, std::string("s1238"));
BENCHMARK_CAPTURE(BM_LogicSimStep, s38417, std::string("s38417"));

// Full equivalence check (circuit vs its cleanup()) on the largest suite
// circuit: random fingerprint rounds through two lockstep compiled
// simulators.  items/sec counts checked pattern-cycles.
void BM_EquivCheck(benchmark::State& state, const std::string& name) {
  const Netlist& a = circuit(name);
  const Netlist b = cleanup(a);
  verify::EquivalenceOptions opts;
  opts.random_rounds = 2;
  opts.seq_cycles = 4;
  for (auto _ : state) {
    const verify::EquivalenceResult r = verify::check_equivalence(a, b, opts);
    if (!r.equivalent()) state.SkipWithError("not equivalent");
    benchmark::DoNotOptimize(r.patterns);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(r.patterns));
  }
}
BENCHMARK_CAPTURE(BM_EquivCheck, s38417, std::string("s38417"));

// Multi-word batched stepping on the compiled kernel: B words per gate
// visit = 64*B patterns per traversal.  items/sec counts gate-pattern
// words (gates x B), so the speedup over BM_LogicSimStep is the direct
// batching win.  synth100k is a ~100k-gate synthetic stress circuit.
const Netlist& synth100k() {
  static const Netlist nl =
      gen::random_logic("synth100k", 64, 32, 100000, 0xC1ABULL);
  return nl;
}

void BM_LogicSimBatched(benchmark::State& state, const std::string& name) {
  const Netlist& nl = name == "synth100k" ? synth100k() : circuit(name);
  const int batch = static_cast<int>(state.range(0));
  CompiledSimulator sim(CompiledNetlist::compile(nl), batch);
  SplitMix64 rng(0xBA7C4ULL);
  for (GateId in : nl.inputs()) {
    for (int w = 0; w < batch; ++w) sim.set_input(in, rng.next(), w);
  }
  for (auto _ : state) {
    sim.step();
    benchmark::DoNotOptimize(sim.fingerprint());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nl.logic_gate_count()) *
                          batch);
}
BENCHMARK_CAPTURE(BM_LogicSimBatched, s1238, std::string("s1238"))
    ->Arg(1)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_LogicSimBatched, s38417, std::string("s38417"))
    ->Arg(1)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_LogicSimBatched, synth100k, std::string("synth100k"))
    ->Arg(1)->Arg(4)->Arg(8);

// Observability overhead gate: the compiled-kernel step loop on the
// largest suite circuit with the obs instrumentation built in but idle
// (tracing off, counters counting — the shipping default).  Building
// with -DDIAC_OBS=OFF compiles the DIAC_OBS_*/DIAC_TRACE_* macros away
// entirely, so the ON-vs-OFF delta of this one entry is the whole obs
// cost on the hot path; the acceptance bar is < 2% (docs/
// OBSERVABILITY.md records the measured numbers).
void BM_ObsOverhead(benchmark::State& state, const std::string& name) {
  const Netlist& nl = circuit(name);
  CompiledSimulator sim(CompiledNetlist::compile(nl), 4);
  SplitMix64 rng(0xBA7C4ULL);
  for (GateId in : nl.inputs()) {
    for (int w = 0; w < 4; ++w) sim.set_input(in, rng.next(), w);
  }
  for (auto _ : state) {
    sim.step();
    benchmark::DoNotOptimize(sim.fingerprint());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nl.logic_gate_count()) * 4);
}
BENCHMARK_CAPTURE(BM_ObsOverhead, s38417, std::string("s38417"));

void BM_SystemSimulation(benchmark::State& state, SimMode mode) {
  const Netlist& nl = circuit("s1238");
  DiacSynthesizer synth(nl, lib());
  const auto sr = synth.synthesize_scheme(Scheme::kDiacOptimized);
  const RfidBurstSource source(0xBEEF);
  for (auto _ : state) {
    SimulatorOptions opt;
    opt.mode = mode;
    opt.target_instances = 2;
    opt.max_time = 4000;
    SystemSimulator sim(sr.design, source, FsmConfig{}, opt);
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK_CAPTURE(BM_SystemSimulation, event, SimMode::kEventDriven);
BENCHMARK_CAPTURE(BM_SystemSimulation, stepped, SimMode::kStepped);

// mc_sweep: wall time of a 32-seed Monte-Carlo sweep (4 schemes x 32
// seeds = 128 simulations) through the experiment engine, at 1 thread and
// at full hardware concurrency.  This is the headline workload the
// event-driven core + parallel runner exist for; CI uploads the JSON so
// the trajectory is tracked per PR.
void BM_McSweep(benchmark::State& state) {
  const Netlist& nl = circuit("s1238");
  EvaluationOptions opt;
  opt.simulator.target_instances = 8;
  opt.simulator.max_time = 30000;
  ExperimentRunner runner(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_monte_carlo(nl, lib(), opt, 32, runner));
  }
  state.counters["jobs"] = static_cast<double>(runner.jobs());
}
BENCHMARK(BM_McSweep)->Name("mc_sweep")->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// trace_replay: disk-to-result throughput of a measured-trace library
// sweep — load a directory of 100 supply CSVs (each file read exactly
// once per sweep) and replay every trace under all four schemes through
// the experiment engine, at 1 thread and at full hardware concurrency.
const std::string& trace_library_dir() {
  static const std::string dir = [] {
    namespace fs = std::filesystem;
    const fs::path root = fs::temp_directory_path() / "diac_bench_traces";
    // Start from a clean slate: stale or foreign CSVs in the shared temp
    // dir would silently change the swept workload.
    fs::remove_all(root);
    fs::create_directories(root);
    RfidBurstSource::Options options;
    options.horizon = 2000.0;
    for (int i = 0; i < 100; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "trace_%03d.csv", i);
      const RfidBurstSource source(0x7AACE + i, options);
      save_trace_csv((root / name).string(), source, 2000.0, 0.5);
    }
    return root.string();
  }();
  return dir;
}

void BM_TraceReplay(benchmark::State& state) {
  const Netlist& nl = circuit("s1238");
  const std::string& dir = trace_library_dir();
  EvaluationOptions opt;
  opt.simulator.target_instances = 4;
  opt.simulator.max_time = 2000;
  ExperimentRunner runner(static_cast<int>(state.range(0)));
  std::size_t traces = 0;
  for (auto _ : state) {
    const TraceLibrary library = load_trace_library(dir);
    traces = library.entries.size();
    benchmark::DoNotOptimize(
        evaluate_trace_library(nl, lib(), opt, library, runner));
  }
  state.counters["traces"] = static_cast<double>(traces);
  state.counters["jobs"] = static_cast<double>(runner.jobs());
}
BENCHMARK(BM_TraceReplay)->Name("trace_replay")->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// design_search: grid-to-front wall time of a full design-space search on
// b12 — synthesize the whole default candidate grid (72 candidates, one
// synthesis per unique design), evaluate everything on one shared RFID
// trace through the experiment engine, and maintain the Pareto front with
// between-batch pruning; at 1 thread and at full hardware concurrency.
// This is the headline workload the search subsystem exists for.
void BM_DesignSearch(benchmark::State& state) {
  const Netlist& nl = circuit("b12");
  const CandidateSpace space;
  const std::vector<DesignPoint> points = space.grid();
  SearchOptions opt;
  opt.scenario.seed = 0xD5E;
  opt.simulator.target_instances = 6;
  opt.simulator.max_time = 30000;
  ExperimentRunner runner(static_cast<int>(state.range(0)));
  std::size_t front = 0, pruned = 0;
  for (auto _ : state) {
    const SearchResult result = run_search(nl, lib(), points, opt, runner);
    front = result.front.size();
    pruned = result.pruned;
    benchmark::DoNotOptimize(result);
  }
  state.counters["candidates"] = static_cast<double>(points.size());
  state.counters["front"] = static_cast<double>(front);
  state.counters["pruned"] = static_cast<double>(pruned);
  state.counters["jobs"] = static_cast<double>(runner.jobs());
}
BENCHMARK(BM_DesignSearch)->Name("design_search")->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// shard_sweep: end-to-end wall time of a multi-*process* Monte-Carlo
// sweep — spawn N single-threaded `diac shard-worker` processes over a
// 32-seed s1238 sweep (the `diac mc` workload: CLI defaults, 20000 s
// horizon — close to but not byte-for-byte mc_sweep's, which runs a
// 30000 s horizon under a different base seed), wait, and merge the
// row files back into the final statistics; at 1 worker and at 4
// workers.  The 1-vs-4 ratio tracks spawn + serialization + merge
// overhead against compute, i.e. how close process fan-out gets to
// linear before leaving the machine.  Requires the CLI binary
// (DIAC_CLI_PATH is injected by bench/CMakeLists.txt).
#ifdef DIAC_CLI_PATH
void BM_ShardSweep(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  constexpr int kRuns = 32;
  std::size_t samples = 0;
  for (auto _ : state) {
    ShardLaunch launch;
    launch.exe = DIAC_CLI_PATH;
    launch.args = {"shard-worker", "s1238", "--shard-cmd", "mc",
                   "--runs", std::to_string(kRuns), "--instances", "8",
                   "--threads", "1"};
    launch.shards = shards;
    const ShardFileSet files = run_shard_workers(launch);
    const auto payloads = merge_shard_rows(
        files.paths, "mc", static_cast<std::size_t>(shards), kRuns);
    const MonteCarloResult mc = merge_mc_shards(payloads, "s1238", 0);
    samples = mc.samples.size();
    benchmark::DoNotOptimize(mc);
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["runs"] = static_cast<double>(samples);
}
BENCHMARK(BM_ShardSweep)->Name("shard_sweep")->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);
#endif  // DIAC_CLI_PATH

// BM_CacheWarmSweep: the content-addressed result cache's headline
// speedup — a 32-seed Monte-Carlo sweep on the largest suite circuit
// (s38417), cold (fresh cache directory every iteration, every row
// computed and stored) vs warm (store prepopulated once, every row a
// lookup).  The warm/cold ratio is the `--cache-dir` / `diac serve`
// value proposition; run_bench.sh requires cold >= 5x warm.  Rows go
// to a null stream so only compute + cache traffic is timed.
void BM_CacheWarmSweep(benchmark::State& state, bool warm) {
  namespace fs = std::filesystem;
  const Netlist& nl = circuit("s38417");
  EvaluationOptions opt;
  opt.simulator.target_instances = 4;
  opt.simulator.max_time = 10000;
  constexpr int kRuns = 32;
  const fs::path root = fs::temp_directory_path() / "diac_bench_cache";
  ExperimentRunner runner(0);
  struct NullBuf final : std::streambuf {
    int overflow(int c) override { return c; }
  } sink;
  if (warm) {
    // One untimed cold pass fills the store the timed passes hit.
    fs::remove_all(root);
    serve::CacheConfig config;
    config.dir = root.string();
    serve::ResultCache cache(config);
    std::ostream out(&sink);
    run_mc_shard(out, nl, lib(), opt, kRuns, ShardPlan{}, runner, &cache);
  }
  for (auto _ : state) {
    if (!warm) fs::remove_all(root);
    serve::CacheConfig config;
    config.dir = root.string();
    serve::ResultCache cache(config);
    std::ostream out(&sink);
    run_mc_shard(out, nl, lib(), opt, kRuns, ShardPlan{}, runner, &cache);
  }
  fs::remove_all(root);
  state.counters["runs"] = static_cast<double>(kRuns);
}
BENCHMARK_CAPTURE(BM_CacheWarmSweep, cold, false)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_CacheWarmSweep, warm, true)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
