// Harvest-source ablation: the paper motivates RFID but the methodology
// claims generality across ambient sources.  Runs the scheme comparison
// under qualitatively different supplies (bursty RFID, diurnal solar with
// clouds, square wave, constant-scarce) and under storage non-idealities.
// The (source × scheme) grid goes through the experiment engine: jobs fan
// out over every core and results come back in deterministic order.
#include <iostream>
#include <memory>

#include "diac/synthesizer.hpp"
#include "exp/experiment.hpp"
#include "metrics/pdp.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace diac;
  using namespace diac::units;
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const Netlist nl = build_benchmark("s1238");
  DiacSynthesizer synth(nl, lib);

  struct Source {
    const char* label;
    ScenarioSpec scenario;
  };
  std::vector<Source> sources;
  {
    ScenarioSpec rfid;
    rfid.kind = SourceKind::kRfid;
    rfid.seed = 0xFEED;
    sources.push_back({"RFID bursts (default)", rfid});
  }
  {
    ScenarioSpec solar;
    solar.kind = SourceKind::kSolar;
    solar.seed = 0x501A;
    solar.solar.peak_power = 9.0 * mW;
    solar.solar.day_length = 400;
    solar.solar.night_length = 150;
    sources.push_back({"solar + clouds", solar});
  }
  {
    ScenarioSpec square;
    square.kind = SourceKind::kSquare;
    square.square = {8.0 * mW, 40.0, 0.3};
    sources.push_back({"square 8mW 30%/40s", square});
  }
  {
    ScenarioSpec constant;
    constant.kind = SourceKind::kConstant;
    constant.constant_power = 2.2 * mW;
    sources.push_back({"constant 2.2 mW", constant});
  }

  // Synthesize once per scheme, then fan the 4x4 grid out.
  std::array<SynthesisResult, kSchemeCount> designs;
  for (Scheme scheme : kAllSchemes) {
    designs[static_cast<std::size_t>(scheme)] =
        synth.synthesize_scheme(scheme);
  }
  SimulatorOptions opt;
  opt.target_instances = 8;
  opt.max_time = 30000;
  std::vector<std::unique_ptr<HarvestSource>> materialized;
  std::vector<SimulationJob> jobs;
  for (const auto& s : sources) {
    materialized.push_back(
        make_source(clamp_scenario_horizon(s.scenario, opt.max_time)));
    for (Scheme scheme : kAllSchemes) {
      jobs.push_back({&designs[static_cast<std::size_t>(scheme)].design,
                      s.scenario, materialized.back().get(), FsmConfig{},
                      opt});
    }
  }
  ExperimentRunner runner;  // all cores
  const std::vector<RunStats> grid = run_simulations(runner, jobs);

  std::cout << "=== Harvest-source ablation (s1238) ===\n\n";
  Table t({"source", "scheme", "instances", "PDP [mJ*s]", "norm", "backups",
           "saves", "outages"});
  for (std::size_t si = 0; si < sources.size(); ++si) {
    double base_pdp = 0;
    for (Scheme scheme : kAllSchemes) {
      const RunStats& st =
          grid[si * kSchemeCount + static_cast<std::size_t>(scheme)];
      if (scheme == Scheme::kNvBased) base_pdp = st.pdp();
      t.add_row({scheme == Scheme::kNvBased ? sources[si].label : "",
                 to_string(scheme), std::to_string(st.instances_completed),
                 Table::num(as_mJ(st.pdp()), 1),
                 Table::num(base_pdp > 0 ? st.pdp() / base_pdp : 0, 3),
                 std::to_string(st.backups),
                 std::to_string(st.safe_zone_saves),
                 std::to_string(st.deep_outages)});
    }
    t.add_rule();
  }
  std::cout << t.str() << "\n";

  // Storage non-idealities: 80% charge path, 20 uW self-discharge.
  std::cout << "=== Storage non-idealities (RFID source) ===\n\n";
  Table t2({"storage", "scheme", "instances", "PDP [mJ*s]", "norm"});
  for (const bool ideal : {true, false}) {
    const RfidBurstSource source(0xFEED);
    double base_pdp = 0;
    for (Scheme scheme : {Scheme::kNvBased, Scheme::kDiacOptimized}) {
      const auto sr = synth.synthesize_scheme(scheme);
      SimulatorOptions sim_opt;
      sim_opt.target_instances = 8;
      sim_opt.max_time = 40000;
      if (!ideal) {
        sim_opt.charge_efficiency = 0.8;
        sim_opt.storage_leakage = 20e-6;
      }
      SystemSimulator sim(sr.design, source, FsmConfig{}, sim_opt);
      const RunStats st = sim.run();
      if (scheme == Scheme::kNvBased) base_pdp = st.pdp();
      t2.add_row({scheme == Scheme::kNvBased
                      ? (ideal ? "ideal" : "80% path, 20uW leak")
                      : "",
                  to_string(scheme), std::to_string(st.instances_completed),
                  Table::num(as_mJ(st.pdp()), 1),
                  Table::num(base_pdp > 0 ? st.pdp() / base_pdp : 0, 3)});
    }
    t2.add_rule();
  }
  std::cout << t2.str() << "\n";
  std::cout << "expectation: DIAC-Optimized wins under every source class; "
               "non-ideal storage slows everyone but preserves the "
               "ordering.\n";
  return 0;
}
