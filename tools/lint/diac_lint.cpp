// diac-lint — the determinism linter.
//
// A standalone token-level static-analysis pass over the diac sources that
// mechanically enforces the bit-identity invariants documented in
// docs/ARCHITECTURE.md ("Determinism invariants") and docs/LINTS.md.  The
// whole tool is deliberately a comment/string-aware token scanner, not a
// compiler plugin: the invariants it guards are lexically visible (an
// `unordered_map` token, a `rand` call, a `+=` inside a `parallel_for`
// lambda), and a scanner keeps the tool dependency-free, instant, and
// runnable as a plain ctest on every configuration.
//
// Rules (each has a machine-readable ID, printed on violation):
//   D1  no nondeterminism APIs (random_device / rand / time() / *_clock)
//   D2  no unordered_{map,set} in report-feeding code
//   D3  no floating-point accumulation into shared state from workers
//   D4  public API headers in src/exp, src/search, src/shard, src/serve
//       keep /// docs
//
// Suppression: append an allow comment — "diac-lint" + colon + " allow(D2)
// <reason>" behind "//" — to the offending line, or put it on its own line
// directly above (docs/LINTS.md shows the syntax verbatim).  The reason is
// mandatory; suppressions are counted and reported, and a suppression that
// matches nothing is itself an error (stale suppressions rot).
//
// Exit codes: 0 clean (or --expect satisfied), 1 violations (or --expect
// unsatisfied), 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RuleInfo {
  const char* id;
  const char* summary;
  const char* rationale;
};

// The rule registry.  tools/check_docs.sh greps these IDs out of this file
// and requires a matching `### D<n>` section in docs/LINTS.md.
constexpr RuleInfo kRules[] = {
    {"D1", "no nondeterminism APIs in simulation/sweep paths",
     "wall-clock and ambient RNG make runs unreproducible; all randomness "
     "must be explicitly seeded per job (ScenarioSpec::seed, derive_seed)"},
    {"D2", "no unordered_{map,set} in report-feeding code",
     "hash iteration order is unspecified and varies across standard "
     "libraries; reports, codecs and aggregation need ordered containers "
     "or sorted snapshots"},
    {"D3", "no floating-point accumulation into shared state from workers",
     "FP addition is not associative; parallel_for jobs write only their "
     "own slot, accumulation happens in the blessed sequential mergers "
     "(summarize_monte_carlo, ranked_front)"},
    {"D4", "public API headers in src/exp, src/search, src/shard, src/serve "
           "stay ///-documented",
     "the sweep-facing API contract lives in these Doxygen headers; an "
     "undocumented declaration silently drops out of the reference"},
    {"D5", "subsystem includes follow the documented dependency DAG",
     "each src/ subsystem may include only itself and lower layers "
     "(util < obs < cell < netlist < tree < diac < verify < power < "
     "runtime < exp < search < metrics < shard < serve, see "
     "docs/ARCHITECTURE.md); an upward include couples layers and breaks "
     "the one-direction build and reasoning order"},
    {"D6", "observability stays out of result-producing code",
     "src/obs is a strict side channel: reports (src/metrics), the CSV "
     "writer, the shard row codec/merge and the RunStats definition must "
     "not include it or name its symbols, so traces and metrics can "
     "never feed back into results and stdout/--csv stay byte-identical "
     "with observability on or off"},
};

const RuleInfo* find_rule(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

// Files exempt from D3's parallel-lambda accumulation check: the blessed
// mergers run single-threaded and own the one canonical accumulation order.
constexpr const char* kBlessedMergers[] = {
    "metrics/montecarlo.cpp",
    "search/pareto.cpp",
};

struct Suppression {
  std::set<std::string> ids;
  std::string reason;
  int decl_line = 0;  // where the comment sits
  bool used = false;
};

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct FileScan {
  fs::path path;
  std::vector<std::string> raw;      // original lines
  std::vector<std::string> code;     // comments stripped, strings blanked
  std::vector<bool> is_doc;          // line is (or carries) a /// comment
  std::vector<std::string> comment;  // text of any // comment on the line
  std::map<int, Suppression> suppressions;  // keyed by the line they govern
  bool api_header_pragma = false;    // file opted into D4 via pragma
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Strips comments and blanks string/char literals, preserving line
// structure, and records per-line comment text for suppression parsing.
void strip(FileScan& f) {
  enum class State { kCode, kBlock };
  State state = State::kCode;
  f.code.resize(f.raw.size());
  f.is_doc.resize(f.raw.size(), false);
  f.comment.resize(f.raw.size());
  for (std::size_t n = 0; n < f.raw.size(); ++n) {
    const std::string& in = f.raw[n];
    std::string out;
    out.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (state == State::kBlock) {
        if (in[i] == '*' && i + 1 < in.size() && in[i + 1] == '/') {
          state = State::kCode;
          ++i;
        }
        continue;
      }
      const char c = in[i];
      if (c == '/' && i + 1 < in.size() && in[i + 1] == '/') {
        f.comment[n] = in.substr(i + 2);
        if (i + 2 < in.size() && in[i + 2] == '/') f.is_doc[n] = true;
        break;  // rest of line is comment
      }
      if (c == '/' && i + 1 < in.size() && in[i + 1] == '*') {
        state = State::kBlock;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < in.size()) {
          if (in[i] == '\\') {
            ++i;
          } else if (in[i] == quote) {
            break;
          }
          ++i;
        }
        out.push_back(quote);
        out.push_back(quote);
        continue;
      }
      out.push_back(c);
    }
    f.code[n] = std::move(out);
  }
}

bool blank_code(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  });
}

// Parses the tool's directives out of the recorded comments (the marker is
// "diac-lint" followed by a colon; spelled indirectly here so this file can
// lint itself).  `allow(<ID>[,<ID>...]) <reason>` suppresses on the same
// line, or — when the comment stands alone — on the next line that has
// code.  `api-header` opts the whole file into rule D4.
void parse_directives(FileScan& f, std::vector<Violation>& errors) {
  for (std::size_t n = 0; n < f.comment.size(); ++n) {
    const std::string& c = f.comment[n];
    const std::size_t at = c.find("diac-lint:");
    if (at == std::string::npos) continue;
    std::istringstream rest(c.substr(at + std::string("diac-lint:").size()));
    std::string word;
    rest >> word;
    if (word == "api-header") {
      f.api_header_pragma = true;
      continue;
    }
    if (word.rfind("allow(", 0) != 0) {
      errors.push_back({f.path.string(), static_cast<int>(n + 1), "usage",
                        "unknown diac-lint directive '" + word +
                            "' (expected allow(<ID>[,<ID>...]) <reason> "
                            "or api-header)"});
      continue;
    }
    const std::size_t close = word.find(')');
    if (close == std::string::npos) {
      errors.push_back({f.path.string(), static_cast<int>(n + 1), "usage",
                        "malformed allow(...) directive"});
      continue;
    }
    Suppression sup;
    sup.decl_line = static_cast<int>(n + 1);
    std::istringstream ids(word.substr(6, close - 6));
    std::string id;
    while (std::getline(ids, id, ',')) {
      if (!id.empty() && find_rule(id) == nullptr) {
        errors.push_back({f.path.string(), static_cast<int>(n + 1), "usage",
                          "allow(" + id + "): unknown rule ID"});
      }
      if (!id.empty()) sup.ids.insert(id);
    }
    std::getline(rest, sup.reason);
    const std::size_t first =
        sup.reason.find_first_not_of(" \t");
    sup.reason = first == std::string::npos ? "" : sup.reason.substr(first);
    if (sup.reason.empty()) {
      errors.push_back({f.path.string(), static_cast<int>(n + 1), "usage",
                        "allow(...) needs a reason: "
                        "// diac-lint: allow(D2) <why this is safe>"});
      continue;
    }
    // A stand-alone comment line governs the next line with code.
    std::size_t target = n;
    if (blank_code(f.code[n])) {
      target = n + 1;
      while (target < f.code.size() && blank_code(f.code[target])) ++target;
    }
    f.suppressions[static_cast<int>(target + 1)] = std::move(sup);
  }
}

// Calls fn(token, line) for every identifier token in the stripped code.
template <typename Fn>
void for_each_ident(const FileScan& f, Fn&& fn) {
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& s = f.code[n];
    std::size_t i = 0;
    while (i < s.size()) {
      if (ident_char(s[i]) &&
          std::isdigit(static_cast<unsigned char>(s[i])) == 0) {
        std::size_t j = i;
        while (j < s.size() && ident_char(s[j])) ++j;
        fn(s.substr(i, j - i), static_cast<int>(n + 1), s, j);
        i = j;
      } else {
        ++i;
      }
    }
  }
}

bool next_is_call(const std::string& line, std::size_t after) {
  while (after < line.size() &&
         std::isspace(static_cast<unsigned char>(line[after])) != 0) {
    ++after;
  }
  return after < line.size() && line[after] == '(';
}

// --- D1: nondeterminism APIs ------------------------------------------------

void check_d1(const FileScan& f, std::vector<Violation>& out) {
  static const std::set<std::string> kBannedAlways = {
      "random_device", "srand",   "rand_r",        "drand48",
      "system_clock",  "steady_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "localtime", "gmtime",
  };
  static const std::set<std::string> kBannedCalls = {"rand", "time", "clock"};
  for_each_ident(f, [&](const std::string& tok, int line,
                        const std::string& code, std::size_t end) {
    if (kBannedAlways.count(tok) != 0 ||
        (kBannedCalls.count(tok) != 0 && next_is_call(code, end))) {
      out.push_back({f.path.string(), line, "D1",
                     "nondeterminism API '" + tok + "'"});
    }
  });
}

// --- D2: unordered containers ----------------------------------------------

void check_d2(const FileScan& f, std::vector<Violation>& out) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for_each_ident(f, [&](const std::string& tok, int line,
                        const std::string& code, std::size_t) {
    // #include lines are harmless by themselves; the use site is what
    // gets flagged (and a use-free include should just be deleted).
    const std::size_t first = code.find_first_not_of(" \t");
    if (first != std::string::npos && code[first] == '#') return;
    if (kUnordered.count(tok) != 0) {
      out.push_back({f.path.string(), line, "D2",
                     "iteration-order-unstable container '" + tok + "'"});
    }
  });
}

// --- D3: shared-state accumulation -----------------------------------------

// Joined view of the stripped code with a byte -> line map, for the checks
// that need to match brackets across lines.
struct Joined {
  std::string text;
  std::vector<int> line;  // 1-based line for every byte of text
};

Joined join(const FileScan& f) {
  Joined j;
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    for (char c : f.code[n]) {
      j.text.push_back(c);
      j.line.push_back(static_cast<int>(n + 1));
    }
    j.text.push_back('\n');
    j.line.push_back(static_cast<int>(n + 1));
  }
  return j;
}

std::size_t match_forward(const std::string& s, std::size_t open, char lhs,
                          char rhs) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == lhs) ++depth;
    if (s[i] == rhs && --depth == 0) return i;
  }
  return std::string::npos;
}

bool path_ends_with(const fs::path& p, const char* suffix) {
  const std::string s = p.generic_string();
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

void check_d3(const FileScan& f, const Joined& j,
              std::vector<Violation>& out) {
  // (a) atomic floating point is order-dependent accumulation by design.
  for (std::size_t at = j.text.find("atomic"); at != std::string::npos;
       at = j.text.find("atomic", at + 1)) {
    if (at > 0 && ident_char(j.text[at - 1])) continue;
    std::size_t i = at + 6;
    while (i < j.text.size() &&
           std::isspace(static_cast<unsigned char>(j.text[i])) != 0) {
      ++i;
    }
    if (i >= j.text.size() || j.text[i] != '<') continue;
    ++i;
    while (i < j.text.size() &&
           std::isspace(static_cast<unsigned char>(j.text[i])) != 0) {
      ++i;
    }
    if (j.text.compare(i, 6, "double") == 0 ||
        j.text.compare(i, 5, "float") == 0) {
      out.push_back({f.path.string(), j.line[at], "D3",
                     "std::atomic floating point (accumulation order "
                     "depends on thread interleaving)"});
    }
  }

  // (b) compound floating-point-style accumulation inside a lambda handed
  // to parallel_for: jobs must write only their own slot.
  for (const char* blessed : kBlessedMergers) {
    if (path_ends_with(f.path, blessed)) return;
  }
  for (std::size_t at = j.text.find("parallel_for"); at != std::string::npos;
       at = j.text.find("parallel_for", at + 1)) {
    if (at > 0 && ident_char(j.text[at - 1])) continue;
    const std::size_t call = j.text.find('(', at);
    if (call == std::string::npos) continue;
    const std::size_t call_end = match_forward(j.text, call, '(', ')');
    if (call_end == std::string::npos) continue;
    const std::size_t capture = j.text.find('[', call);
    if (capture == std::string::npos || capture > call_end) continue;
    const std::size_t body = j.text.find('{', capture);
    if (body == std::string::npos || body > call_end) continue;
    const std::size_t body_end = match_forward(j.text, body, '{', '}');
    if (body_end == std::string::npos) continue;
    for (std::size_t i = body + 1; i + 1 < body_end; ++i) {
      const char a = j.text[i];
      const char b = j.text[i + 1];
      if (b == '=' && (a == '+' || a == '-' || a == '*' || a == '/') &&
          (i == 0 || (j.text[i - 1] != a && j.text[i - 1] != '<' &&
                      j.text[i - 1] != '>' && j.text[i - 1] != '=' &&
                      j.text[i - 1] != '!'))) {
        out.push_back({f.path.string(), j.line[i], "D3",
                       std::string("compound accumulation '") + a +
                           "=' inside a parallel_for job (write your own "
                           "slot; merge in summarize_monte_carlo / "
                           "ranked_front)"});
      }
    }
  }
}

// --- D4: documented API headers --------------------------------------------

bool d4_applies(const FileScan& f) {
  if (f.api_header_pragma) return true;
  const std::string p = f.path.generic_string();
  if (p.size() < 4 || p.compare(p.size() - 4, 4, ".hpp") != 0) return false;
  return p.find("/exp/") != std::string::npos ||
         p.find("/search/") != std::string::npos ||
         p.find("/shard/") != std::string::npos ||
         p.find("/serve/") != std::string::npos;
}

void check_d4(const FileScan& f, std::vector<Violation>& out) {
  // Walk the stripped code tracking brace scopes; a statement that begins
  // while every open brace is a namespace brace is a namespace-scope
  // declaration and must be preceded by a /// line.
  std::vector<char> scopes;  // 'n' namespace brace, 'b' other brace
  int parens = 0;
  bool pending_namespace = false;
  bool in_stmt = false;
  int stmt_depth_braces = 0;
  // The file-top /// block documents the file's primary type (the repo's
  // established header idiom), so the first declaration is exempt.
  bool first_decl = !f.is_doc.empty() && f.is_doc[0];

  auto at_namespace_scope = [&]() {
    return parens == 0 &&
           std::all_of(scopes.begin(), scopes.end(),
                       [](char c) { return c == 'n'; });
  };

  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& line = f.code[n];
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') continue;
    for (std::size_t i = first == std::string::npos ? line.size() : first;
         i < line.size(); ++i) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
      if (c == '(') ++parens;
      if (c == ')') parens = std::max(0, parens - 1);
      if (c == '{') {
        scopes.push_back(pending_namespace && parens == 0 ? 'n' : 'b');
        if (scopes.back() == 'b' && in_stmt) ++stmt_depth_braces;
        pending_namespace = false;
        continue;
      }
      if (c == '}') {
        if (!scopes.empty()) {
          if (scopes.back() == 'b' && in_stmt &&
              --stmt_depth_braces == 0) {
            in_stmt = false;  // end of a braced declaration body
          }
          if (scopes.back() == 'n') in_stmt = false;
          scopes.pop_back();
        }
        continue;
      }
      if (c == ';') {
        if (parens == 0 && stmt_depth_braces == 0) in_stmt = false;
        continue;
      }
      if (in_stmt || pending_namespace || !at_namespace_scope()) continue;

      // First character of a new namespace-scope statement.
      in_stmt = true;
      stmt_depth_braces = 0;
      if (!ident_char(c)) continue;
      std::size_t jx = i;
      while (jx < line.size() && ident_char(line[jx])) ++jx;
      const std::string tok = line.substr(i, jx - i);
      i = jx - 1;
      if (tok == "namespace") {
        pending_namespace = true;
        in_stmt = false;
        continue;
      }
      if (tok == "extern" || tok == "static_assert" || tok == "friend") {
        continue;
      }
      // Forward declarations need no doc: `class X;` / `struct X;`.
      if (tok == "class" || tok == "struct") {
        const std::string rest = line.substr(jx);
        std::istringstream is(rest);
        std::string name, tail;
        is >> name >> tail;
        if (!name.empty() && (tail == ";" ||
                              (tail.empty() && name.back() == ';'))) {
          continue;
        }
      }
      // The preceding raw line must be a /// doc line.
      if (first_decl) {
        first_decl = false;
        continue;
      }
      if (n == 0 || !f.is_doc[n - 1]) {
        out.push_back({f.path.string(), static_cast<int>(n + 1), "D4",
                       "namespace-scope declaration starting with '" + tok +
                           "' has no /// doc comment on the line above"});
      }
    }
  }
}

// --- D5: include-layering ---------------------------------------------------

// The subsystem layer order of docs/ARCHITECTURE.md ("each row may
// depend on the rows above it, never below"), lowest layer first.  A
// file under src/<sub>/ may include only subsystems at its own rank or
// lower.
constexpr const char* kSubsystemOrder[] = {
    "util",   "obs",     "cell", "netlist", "tree",    "diac",  "verify",
    "power",  "runtime", "exp",  "search",  "metrics", "shard", "serve",
};

int subsystem_rank(const std::string& name) {
  int rank = 0;
  for (const char* s : kSubsystemOrder) {
    if (name == s) return rank;
    ++rank;
  }
  return -1;
}

// Which subsystem a file belongs to: the innermost src/<subsystem>/
// path component pair, or "" for files outside src/ (tools, tests).
std::string file_subsystem(const fs::path& path) {
  std::vector<std::string> parts;
  for (const auto& c : path) parts.push_back(c.generic_string());
  std::string sub;
  for (std::size_t i = 0; i + 2 < parts.size(); ++i) {
    if (parts[i] == "src" && subsystem_rank(parts[i + 1]) >= 0) {
      sub = parts[i + 1];
    }
  }
  return sub;
}

// The `sub` of a leading `#include "sub/..."`, or "" when the line is
// not a subsystem-qualified include.  Parses raw text: strip() blanks
// the quoted path in `code`.
std::string include_subsystem(const std::string& raw) {
  std::size_t i = raw.find_first_not_of(" \t");
  if (i == std::string::npos || raw[i] != '#') return "";
  i = raw.find_first_not_of(" \t", i + 1);
  if (i == std::string::npos || raw.compare(i, 7, "include") != 0) return "";
  i = raw.find_first_not_of(" \t", i + 7);
  if (i == std::string::npos || raw[i] != '"') return "";
  const std::size_t slash = raw.find('/', i + 1);
  const std::size_t close = raw.find('"', i + 1);
  if (slash == std::string::npos || close == std::string::npos ||
      close < slash) {
    return "";  // flat include like "config.h"
  }
  return raw.substr(i + 1, slash - i - 1);
}

void check_d5(const FileScan& f, std::vector<Violation>& out) {
  const std::string own = file_subsystem(f.path);
  if (own.empty()) return;
  const int own_rank = subsystem_rank(own);
  for (std::size_t n = 0; n < f.raw.size(); ++n) {
    const std::string target = include_subsystem(f.raw[n]);
    if (target.empty()) continue;
    const int target_rank = subsystem_rank(target);
    if (target_rank < 0 || target_rank <= own_rank) continue;
    out.push_back({f.path.string(), static_cast<int>(n + 1), "D5",
                   "src/" + own + " must not include src/" + target +
                       " (layer " + std::to_string(own_rank) +
                       " reaching up to layer " +
                       std::to_string(target_rank) + ")"});
  }
}

// --- D6: observability side-channel boundary --------------------------------

// Files whose output IS a result artifact: everything under src/metrics
// (reports, sweeps, aggregation) plus the CSV writer, the shard row
// codec and merge, and the RunStats definition itself.  An obs include
// or symbol here would let the side channel feed back into results —
// instrumented *producers* (simulator, runner, search) are fine, the
// files that define and serialize the results are not.
constexpr const char* kD6ResultFiles[] = {
    "util/csv.",
    "shard/codec.",
    "shard/merge.",
    "runtime/stats.",
};

bool d6_applies(const FileScan& f) {
  const std::string own = file_subsystem(f.path);
  if (own.empty()) return false;  // tools and tests may read obs output
  if (own == "metrics") return true;
  const std::string p = f.path.generic_string();
  for (const char* frag : kD6ResultFiles) {
    if (p.find(frag) != std::string::npos) return true;
  }
  return false;
}

void check_d6(const FileScan& f, std::vector<Violation>& out) {
  if (!d6_applies(f)) return;
  for (std::size_t n = 0; n < f.raw.size(); ++n) {
    if (include_subsystem(f.raw[n]) == "obs") {
      out.push_back({f.path.string(), static_cast<int>(n + 1), "D6",
                     "result-producing file includes src/obs; observability "
                     "is a side channel and must not flow into results"});
    }
  }
  for_each_ident(f, [&](const std::string& tok, int line,
                        const std::string& code, std::size_t end) {
    const bool macro = tok.rfind("DIAC_OBS_", 0) == 0 ||
                       tok.rfind("DIAC_TRACE_", 0) == 0;
    const bool ns = tok == "obs" && end + 1 < code.size() &&
                    code.compare(end, 2, "::") == 0;
    if (macro || ns) {
      out.push_back({f.path.string(), line, "D6",
                     "observability symbol '" + tok +
                         "' in result-producing code"});
    }
  });
}

// --- driver -----------------------------------------------------------------

struct Options {
  std::vector<fs::path> paths;
  std::string expect;       // rule ID that must fire exactly once
  int expect_suppressed = -1;
  bool quiet = false;
};

int usage(std::ostream& os) {
  os << "usage: diac-lint [options] <file|dir>...\n"
        "  --list-rules            print every rule ID and summary\n"
        "  --expect <ID>           exit 0 iff exactly one <ID> violation "
        "fires (fixture mode)\n"
        "  --expect-suppressed <N> exit 0 iff clean with exactly N used "
        "suppressions\n"
        "  -q, --quiet             suppress the per-file OK chatter\n";
  return 2;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      return 0;
    } else if (a == "--expect" && i + 1 < argc) {
      opt.expect = argv[++i];
      if (find_rule(opt.expect) == nullptr) {
        std::cerr << "diac-lint: --expect " << opt.expect
                  << ": unknown rule ID\n";
        return 2;
      }
    } else if (a == "--expect-suppressed" && i + 1 < argc) {
      opt.expect_suppressed = std::atoi(argv[++i]);
    } else if (a == "-q" || a == "--quiet") {
      opt.quiet = true;
    } else if (a == "-h" || a == "--help") {
      return usage(std::cout), 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "diac-lint: unknown option " << a << "\n";
      return usage(std::cerr);
    } else {
      opt.paths.emplace_back(a);
    }
  }
  if (opt.paths.empty()) return usage(std::cerr);

  std::vector<fs::path> files;
  for (const fs::path& p : opt.paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& e : fs::recursive_directory_iterator(p)) {
        if (e.is_regular_file() && lintable(e.path())) {
          files.push_back(e.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "diac-lint: cannot read " << p << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;  // unsuppressed
  int suppressed = 0;
  for (const fs::path& path : files) {
    FileScan f;
    f.path = path;
    std::ifstream in(path);
    if (!in) {
      std::cerr << "diac-lint: cannot open " << path << "\n";
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) f.raw.push_back(line);
    strip(f);
    parse_directives(f, violations);

    std::vector<Violation> found;
    check_d1(f, found);
    check_d2(f, found);
    const Joined j = join(f);
    check_d3(f, j, found);
    if (d4_applies(f)) check_d4(f, found);
    check_d5(f, found);
    check_d6(f, found);

    for (Violation& v : found) {
      auto it = f.suppressions.find(v.line);
      if (it != f.suppressions.end() && it->second.ids.count(v.rule) != 0) {
        it->second.used = true;
        ++suppressed;
        if (!opt.quiet) {
          std::cout << v.file << ":" << v.line << ": suppressed [" << v.rule
                    << "] " << v.message << " — " << it->second.reason
                    << "\n";
        }
        continue;
      }
      violations.push_back(std::move(v));
    }
    for (const auto& [ln, sup] : f.suppressions) {
      if (!sup.used) {
        std::string ids;
        for (const std::string& id : sup.ids) {
          ids += (ids.empty() ? "" : ",") + id;
        }
        violations.push_back(
            {f.path.string(), sup.decl_line, "usage",
             "stale suppression allow(" + ids +
                 ") matches no violation; delete it"});
      }
    }
  }

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  for (const Violation& v : violations) {
    std::cerr << v.file << ":" << v.line << ": error: [" << v.rule << "] "
              << v.message << "\n";
    if (const RuleInfo* r = find_rule(v.rule)) {
      std::cerr << "    " << v.rule << ": " << r->rationale
                << "\n    suppress with: // diac-lint: allow(" << v.rule
                << ") <reason>\n";
    }
  }
  std::cerr << "diac-lint: " << files.size() << " files, "
            << violations.size() << " violations, " << suppressed
            << " suppressed\n";

  if (!opt.expect.empty()) {
    const bool ok =
        violations.size() == 1 && violations[0].rule == opt.expect;
    if (!ok) {
      std::cerr << "diac-lint: --expect " << opt.expect
                << ": wanted exactly one " << opt.expect
                << " violation, got " << violations.size() << "\n";
    }
    return ok ? 0 : 1;
  }
  if (opt.expect_suppressed >= 0) {
    const bool ok =
        violations.empty() && suppressed == opt.expect_suppressed;
    if (!ok) {
      std::cerr << "diac-lint: --expect-suppressed " << opt.expect_suppressed
                << ": got " << suppressed << " suppressed, "
                << violations.size() << " violations\n";
    }
    return ok ? 0 : 1;
  }
  return violations.empty() ? 0 : 1;
}
