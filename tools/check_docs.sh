#!/usr/bin/env bash
# Docs lint: keeps the CLI and its reference documentation in lock-step,
# and keeps the markdown link graph unbroken.
#
#   tools/check_docs.sh [path-to-diac-binary]
#
# Checks (all grep-based, no build needed):
#   1. every option name used by tools/diac_cli.cpp (map keys and help
#      text, hidden shard flags included) appears as `--<name>` in
#      docs/CLI.md;
#   2. every subcommand dispatched in tools/diac_cli.cpp has a
#      "### `diac <cmd>" heading in docs/CLI.md;
#   3. every relative markdown link in README.md and docs/*.md resolves
#      to an existing file;
#   4. every lint rule ID implemented in tools/lint/diac_lint.cpp has a
#      "### D<n>" section in docs/LINTS.md;
#   5. (only when a binary is given — the `docs_cli_consistency` ctest
#      does this) every `--flag` printed by `diac --help` is documented.
set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
cli_src="${repo_root}/tools/diac_cli.cpp"
doc="${repo_root}/docs/CLI.md"
fail=0

[[ -f "${doc}" ]] || { echo "error: ${doc} missing" >&2; exit 1; }

# Names that look like flags/commands in the source but are not part of
# the CLI surface: "--option" is the usage-line placeholder, "-h" strips
# to "h".
ignore_flags="option"
ignore_cmds="h"

ignored() {
  local needle=$1; shift
  local word
  for word in $1; do [[ "${word}" == "${needle}" ]] && return 0; done
  return 1
}

# --- 1. source flags vs docs/CLI.md -----------------------------------------
src_flags=$(
  {
    # help text and literal "--flag" strings
    grep -oE -- '--[a-z][a-z-]*' "${cli_src}" | sed 's/^--//'
    # option-map lookups: opt(a, "x", ...), options.count("x"),
    # options.find("x")
    grep -oE 'opt\(a, "[a-z][a-z-]*"' "${cli_src}" | sed 's/.*"\([^"]*\)"/\1/'
    grep -oE 'options\.(count|find)\("[a-z][a-z-]*"\)' "${cli_src}" |
      sed 's/.*"\([^"]*\)".*/\1/'
  } | sort -u
)
for flag in ${src_flags}; do
  ignored "${flag}" "${ignore_flags}" && continue
  if ! grep -qE -- "(^|[^a-zA-Z-])--${flag}([^a-z-]|$)" "${doc}"; then
    echo "docs/CLI.md: missing entry for --${flag} (used by diac_cli.cpp)" >&2
    fail=1
  fi
done

# --- 2. source subcommands vs docs/CLI.md -----------------------------------
src_cmds=$(grep -oE 'command == "[a-z-]+"' "${cli_src}" |
           sed 's/.*"\([^"]*\)".*/\1/; s/^-*//' | sort -u)
for cmd in ${src_cmds}; do
  ignored "${cmd}" "${ignore_cmds}" && continue
  if ! grep -qE "^### \`diac ${cmd}" "${doc}"; then
    echo "docs/CLI.md: missing '### \`diac ${cmd}\`' section" >&2
    fail=1
  fi
done

# --- 3. markdown link check -------------------------------------------------
for md in "${repo_root}/README.md" "${repo_root}"/docs/*.md; do
  [[ -f "${md}" ]] || continue
  dir=$(dirname -- "${md}")
  while IFS= read -r link; do
    link=${link%%#*}                      # drop in-page anchors
    [[ -z "${link}" ]] && continue
    case "${link}" in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [[ ! -e "${dir}/${link}" ]]; then
      echo "${md#"${repo_root}"/}: broken link '${link}'" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "${md}" | sed 's/^](//; s/)$//')
done

# --- 4. lint rule IDs vs docs/LINTS.md --------------------------------------
lint_src="${repo_root}/tools/lint/diac_lint.cpp"
lint_doc="${repo_root}/docs/LINTS.md"
if [[ -f "${lint_src}" ]]; then
  [[ -f "${lint_doc}" ]] || { echo "error: ${lint_doc} missing" >&2; exit 1; }
  # Rule IDs are the first field of each kRules entry: {"D1", ...}.
  rule_ids=$(grep -oE '\{"D[0-9]+"' "${lint_src}" | tr -d '{"' | sort -u)
  [[ -n "${rule_ids}" ]] || {
    echo "error: no rule IDs found in ${lint_src}" >&2; exit 1; }
  for id in ${rule_ids}; do
    if ! grep -qE "^### ${id} " "${lint_doc}"; then
      echo "docs/LINTS.md: missing '### ${id} — ...' section for rule ${id}" \
           "(implemented in tools/lint/diac_lint.cpp)" >&2
      fail=1
    fi
  done
fi

# --- 5. --help output vs docs/CLI.md (needs the built binary) ---------------
if [[ $# -ge 1 ]]; then
  diac_bin=$1
  [[ -x "${diac_bin}" ]] || { echo "error: ${diac_bin} not executable" >&2; exit 1; }
  help_flags=$("${diac_bin}" --help | grep -oE -- '--[a-z][a-z-]*' |
               sed 's/^--//' | sort -u)
  for flag in ${help_flags}; do
    ignored "${flag}" "${ignore_flags}" && continue
    if ! grep -qE -- "(^|[^a-zA-Z-])--${flag}([^a-z-]|$)" "${doc}"; then
      echo "docs/CLI.md: missing entry for --${flag} (printed by --help)" >&2
      fail=1
    fi
  done
fi

if [[ ${fail} -ne 0 ]]; then
  echo "docs check FAILED" >&2
  exit 1
fi
echo "docs check OK"
