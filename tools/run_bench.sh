#!/usr/bin/env bash
# Perf harness: run the micro-kernel and Table-1 benches and emit
# machine-readable artifacts at the repo root.
#
#   tools/run_bench.sh [build-dir]     (default: build)
#
# Outputs:
#   BENCH_micro.json  per-kernel wall-time (Google Benchmark JSON format)
#   BENCH_tab1.txt    benchmark-suite inventory + netlist statistics
#
# These artifacts are gitignored; they seed the cross-PR benchmark
# trajectory tracked in ROADMAP.md.
set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
build_dir=${1:-"${repo_root}/build"}
[[ "${build_dir}" = /* ]] || build_dir="${repo_root}/${build_dir}"

micro="${build_dir}/bench/micro_kernels"
tab1="${build_dir}/bench/tab1_suite"

for bin in "${micro}" "${tab1}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built." >&2
    echo "build first: cmake -B '${build_dir}' -S '${repo_root}' &&" \
         "cmake --build '${build_dir}' -j" >&2
    exit 1
  fi
done

cd "${repo_root}"

echo "== micro_kernels -> BENCH_micro.json =="
"${micro}" \
  --benchmark_out=BENCH_micro.json \
  --benchmark_out_format=json \
  --benchmark_min_time=0.05 \
  --benchmark_repetitions=1

echo
echo "== tab1_suite -> BENCH_tab1.txt =="
"${tab1}" | tee BENCH_tab1.txt

# Sanity-check the JSON so a truncated run fails loudly, and require the
# sweep entries that track the experiment engine's perf per PR: mc_sweep
# (32-seed Monte-Carlo), trace_replay (100-trace measured-supply
# library) and design_search (72-candidate grid-to-front design-space
# search), each at 1 thread and at full hardware concurrency, plus
# shard_sweep (the 32-seed sweep split over 1 vs 4 single-threaded
# worker *processes*, spawn + serialize + merge included).
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("BENCH_micro.json") as f:
    doc = json.load(f)
kernels = [b["name"] for b in doc["benchmarks"]]
assert kernels, "BENCH_micro.json has no benchmark entries"
for prefix in ("mc_sweep", "trace_replay", "design_search", "shard_sweep"):
    sweeps = {b["name"]: b for b in doc["benchmarks"]
              if b["name"].startswith(prefix)}
    assert len(sweeps) >= 2, \
        f"expected {prefix} entries at 1 and N jobs, got {sorted(sweeps)}"
    times = {name: b["real_time"] for name, b in sweeps.items()}
    serial = times.get(f"{prefix}/1")
    rest = [t for name, t in times.items() if name != f"{prefix}/1"]
    if serial and rest:
        print(f"{prefix}: {serial:.1f} ms serial -> {min(rest):.1f} ms "
              f"parallel ({serial / min(rest):.1f}x)")
# The compiled-kernel batching sweep: s1238 + s38417 + synth100k, each at
# several batch widths, tracking the multi-word pattern throughput per PR.
batched = [k for k in kernels if k.startswith("BM_LogicSimBatched/")]
assert len(batched) >= 3, \
    f"expected BM_LogicSimBatched entries for >= 3 circuits, got {batched}"
for circuit in ("s1238", "s38417", "synth100k"):
    assert any(k.startswith(f"BM_LogicSimBatched/{circuit}/") for k in batched), \
        f"missing BM_LogicSimBatched entries for {circuit}: {batched}"
# The equivalence-check kernel (verify/): random-fingerprint lockstep on
# the largest suite circuit, tracking checker throughput per PR.
assert any(k.startswith("BM_EquivCheck/s38417") for k in kernels), \
    f"missing BM_EquivCheck/s38417 entry: {kernels}"
# The observability overhead gate: the compiled kernel with the obs
# instrumentation built in but idle; compare against a -DDIAC_OBS=OFF
# build of the same entry to measure the total obs cost (< 2% bar).
assert any(k.startswith("BM_ObsOverhead/s38417") for k in kernels), \
    f"missing BM_ObsOverhead/s38417 entry: {kernels}"
# The result-cache gate (serve/): a warm 32-seed s38417 sweep through a
# prepopulated --cache-dir must beat the cold (compute + store) pass by
# at least 5x, or the cache is not paying for its own bookkeeping.
cache = {b["name"]: b["real_time"] for b in doc["benchmarks"]
         if b["name"].startswith("BM_CacheWarmSweep/")}
for entry in ("BM_CacheWarmSweep/cold", "BM_CacheWarmSweep/warm"):
    assert any(k.startswith(entry) for k in cache), \
        f"missing {entry} entry: {sorted(cache)}"
cold = min(t for name, t in cache.items()
           if name.startswith("BM_CacheWarmSweep/cold"))
warm = min(t for name, t in cache.items()
           if name.startswith("BM_CacheWarmSweep/warm"))
assert warm > 0 and cold / warm >= 5.0, \
    f"cache warm-start too slow: cold {cold:.1f} ms / warm {warm:.1f} ms " \
    f"= {cold / warm:.1f}x (< 5x)"
print(f"BM_CacheWarmSweep: cold {cold:.1f} ms -> warm {warm:.1f} ms "
      f"({cold / warm:.1f}x)")
print(f"BENCH_micro.json OK: {len(kernels)} kernels timed")
EOF
fi

echo "done: ${repo_root}/BENCH_micro.json, ${repo_root}/BENCH_tab1.txt"
