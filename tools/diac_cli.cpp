// diac — command-line front-end for the DIAC flow.
//
// `diac help` prints the subcommand and option reference (print_usage
// below is the single source of truth for it).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "diac/codegen.hpp"
#include "diac/synthesizer.hpp"
#include "exp/experiment.hpp"
#include "exp/trace_library.hpp"
#include "metrics/montecarlo.hpp"
#include "metrics/trace_sweep.hpp"
#include "metrics/pdp.hpp"
#include "metrics/report.hpp"
#include "netlist/analysis.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/engine.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/options.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "shard/codec.hpp"
#include "shard/coordinator.hpp"
#include "shard/merge.hpp"
#include "shard/plan.hpp"
#include "shard/worker.hpp"
#include "tree/dot_export.hpp"
#include "util/units.hpp"
#include "verify/design_check.hpp"
#include "verify/drc.hpp"
#include "verify/equivalence.hpp"

namespace {

using namespace diac;
using namespace diac::units;

struct Args {
  std::string command;
  std::string target;
  serve::OptionMap options;  // same map the serve protocol carries
};

// Options that are bare flags (no value); shared with the serve
// protocol so both surfaces tokenize identically.
bool is_flag_option(const std::string& name) {
  return serve::is_flag_option(name);
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  int i = 2;
  if (i < argc && argv[i][0] != '-') args.target = argv[i++];
  while (i < argc) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      throw std::runtime_error(std::string("expected option, got ") + argv[i]);
    }
    const std::string name = argv[i] + 2;
    if (is_flag_option(name)) {
      args.options[name] = "1";
      ++i;
      continue;
    }
    if (i + 1 >= argc) {
      throw std::runtime_error(std::string("option ") + argv[i] +
                               " requires a value");
    }
    args.options[name] = argv[i + 1];
    i += 2;
  }
  return args;
}

std::string opt(const Args& a, const std::string& key, const std::string& dflt) {
  return serve::option_or(a.options, key, dflt);
}

// Target loading and the sweep option builders live in serve/options.*,
// shared verbatim with the serve protocol (docs/SERVE.md): a served
// sweep and a standalone one can never disagree on what a flag means.
Netlist load_target(const std::string& target) {
  return serve::load_target(target);
}

SynthesisOptions synth_options(const Args& a) {
  return serve::synth_options(a.options);
}

ScenarioSpec scenario_options(const Args& a) {
  return serve::scenario_options(a.options);
}

// Global --threads N (0 = all cores, the default) plumbed into every
// ExperimentRunner; --jobs is the older spelling, kept as an alias
// (--threads wins when both are given).  Results are bit-identical at
// any thread count, so the default can afford to use the machine.
int threads_option(const Args& a) {
  const auto it = a.options.find("threads");
  const std::string value =
      it != a.options.end() ? it->second : opt(a, "jobs", "0");
  const int threads = std::stoi(value);
  if (threads < 0) throw std::runtime_error("--threads must be >= 0");
  return threads;
}

// --shards N (>= 1) routes mc/replay/search through N `diac` worker
// processes; absent keeps the in-process thread pool.  Sharded runs
// (including --shards 1) produce byte-identical reports for every N:
// diagnostics that depend on the split go to stderr, and search workers
// evaluate exhaustively so no report field depends on pruning order.
int shards_option(const Args& a) {
  if (a.options.count("shards") == 0) return 0;
  const int shards = std::stoi(opt(a, "shards", "1"));
  if (shards < 1) throw std::runtime_error("--shards must be >= 1");
  return shards;
}

// --cache-dir <dir> [--cache-limit-mb <n>] -> on-disk result cache for
// mc/replay/search; absent = no cache.  Entries are exact shard rows
// keyed by canonical job digests, so cached sweeps stay byte-identical
// to cold ones (docs/SERVE.md).
std::unique_ptr<serve::ResultCache> cache_option(const Args& a) {
  const std::string dir = opt(a, "cache-dir", "");
  if (dir.empty()) return nullptr;
  serve::CacheConfig config;
  config.dir = dir;
  config.limit_bytes = std::stoull(opt(a, "cache-limit-mb", "1024")) << 20;
  return std::make_unique<serve::ResultCache>(std::move(config));
}

// --connect <socket> routes the sweep to a running `diac serve`; it is
// exclusive with the flags that steer local evaluation.
std::string connect_option(const Args& a) {
  const std::string socket = opt(a, "connect", "");
  if (socket.empty()) return socket;
  if (a.options.count("shards") != 0) {
    throw std::runtime_error("--connect and --shards are mutually exclusive");
  }
  if (a.options.count("cache-dir") != 0) {
    throw std::runtime_error(
        "--connect and --cache-dir are mutually exclusive (the cache lives "
        "on the server)");
  }
  return socket;
}

// The request that reproduces this invocation server-side: the sweep
// options minus the client-owned flags (output files, threading, and
// the transport itself).
serve::SweepRequest remote_request(const Args& a, const std::string& kind) {
  serve::SweepRequest request;
  request.kind = kind;
  request.target = a.target;
  for (const auto& [key, value] : a.options) {
    if (key == "connect" || key == "shards" || key == "threads" ||
        key == "jobs" || key == "csv" || key == "trace-out" ||
        key == "metrics-out" || key == "cache-dir" ||
        key == "cache-limit-mb") {
      continue;
    }
    request.options[key] = value;
  }
  return request;
}

const char* g_argv0 = "diac";

// The worker binary: this very executable, so parent and workers parse
// options with literally the same code and can never drift.
std::string self_exe() {
  std::error_code ec;
  const auto path = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return path.string();
  return g_argv0;  // non-Linux fallback: argv[0] must then be invokable
}

// Rebuilds the worker argv from the parent's parsed arguments: the same
// target and options, minus the flags the parent owns (--shards is
// re-appended by the coordinator, --csv is written once after the
// merge) and with --threads resolved so the workers split the machine
// instead of oversubscribing it N times.
std::vector<std::string> worker_args(const Args& a, const std::string& kind,
                                     int shards) {
  std::vector<std::string> args{"shard-worker", a.target, "--shard-cmd", kind};
  for (const auto& [key, value] : a.options) {
    if (key == "shards" || key == "threads" || key == "jobs" || key == "csv" ||
        key == "trace-out" || key == "metrics-out" || key == "connect") {
      // --trace-out / --metrics-out name the parent's merged files; the
      // coordinator hands each worker its own scratch path instead.
      // --connect never propagates (workers evaluate locally), while
      // --cache-dir does: sharded workers share the on-disk cache.
      continue;
    }
    args.push_back("--" + key);
    if (!is_flag_option(key)) args.push_back(value);
  }
  int threads = threads_option(a);
  if (threads == 0) {
    const auto cores =
        std::max(1u, std::thread::hardware_concurrency());
    threads = std::max(1, static_cast<int>(cores) / shards);
  }
  args.push_back("--threads");
  args.push_back(std::to_string(threads));
  return args;
}

// Set once the sharded path has written the merged side-channel files,
// so the main() epilogue doesn't overwrite them with parent-only data.
bool g_obs_exported = false;

// Merges the per-worker trace/metrics files (plus this coordinator's own
// spans and counters) into the files named by --trace-out/--metrics-out.
// Strictly a side channel: diagnostics go to stderr, never stdout.
void export_merged_obs(const Args& a, const std::string& kind, int shards,
                       const ShardFileSet& files) {
  const std::string trace_out = opt(a, "trace-out", "");
  if (!trace_out.empty()) {
    obs::TraceMeta meta;
    meta.pid = shards;  // workers are pids 0..N-1; the coordinator sorts last
    meta.process_name = "diac " + kind + " coordinator";
    std::string err;
    if (!obs::merge_trace_files(trace_out, files.trace_paths, meta, &err)) {
      throw std::runtime_error("trace-out: " + err);
    }
    std::cerr << "wrote merged trace " << trace_out << " (" << shards
              << " shard(s))\n";
  }
  const std::string metrics_out = opt(a, "metrics-out", "");
  if (!metrics_out.empty()) {
    obs::MetricsMeta meta;
    meta.command = kind;
    meta.shards_merged = shards;
    std::string err;
    if (!obs::merge_metrics_files(metrics_out, files.metrics_paths, meta,
                                  &err)) {
      throw std::runtime_error("metrics-out: " + err);
    }
    std::cerr << "wrote merged metrics " << metrics_out << "\n";
  }
  g_obs_exported = true;
}

// Fans the sweep out over `shards` worker processes and merges their
// row files into the dense job-indexed payload vector.
std::vector<std::vector<std::string>> run_sharded_sweep(const Args& a,
                                                        const std::string& kind,
                                                        int shards,
                                                        std::size_t jobs) {
  ShardLaunch launch;
  launch.exe = self_exe();
  launch.args = worker_args(a, kind, shards);
  launch.shards = shards;
  launch.trace_files = a.options.count("trace-out") != 0;
  launch.metrics_files = a.options.count("metrics-out") != 0;
  const ShardFileSet files = run_shard_workers(launch);
  auto payloads = merge_shard_rows(files.paths, kind,
                                   static_cast<std::size_t>(shards), jobs);
  // Merge the side channels before `files` cleans up the scratch dir.
  export_merged_obs(a, kind, shards, files);
  return payloads;
}

// The dense payload vector of a single-shard row stream (the in-process
// --cache-dir path below and the serve client both end here, so every
// cached/remote sweep funnels through the same merge+report code as
// --shards).
std::vector<std::vector<std::string>> dense_payloads(std::istream& in,
                                                     const std::string& kind,
                                                     std::size_t jobs) {
  const ShardFile file = read_shard_stream(in, "in-process " + kind + " sweep");
  std::vector<std::vector<std::string>> payloads(jobs);
  for (const ShardRow& row : file.rows) payloads[row.job] = row.tokens;
  return payloads;
}

int cmd_suite() {
  std::cout << suite_inventory_table().str();
  return 0;
}

// `diac version` / `diac --version`: build provenance.  The same block
// is embedded as the "build" header of --trace-out/--metrics-out files.
int cmd_version() {
  const obs::BuildInfo& b = obs::build_info();
  std::cout << "diac version " << b.git_hash << "\n"
            << "compiler:  " << b.compiler << "\n"
            << "build:     " << b.build_type << "\n"
            << "sanitize:  " << b.sanitize << "\n"
            << "obs:       " << (b.obs_enabled ? "on" : "off") << "\n";
  return 0;
}

int cmd_stats(const Args& a) {
  // `diac stats <file>.json` renders a --metrics-out export as a table.
  if (a.target.size() > 5 &&
      a.target.compare(a.target.size() - 5, 5, ".json") == 0) {
    std::string err;
    if (!obs::print_metrics_file(a.target, std::cout, &err)) {
      throw std::runtime_error(err);
    }
    return 0;
  }
  const Netlist nl = load_target(a.target);
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const NetlistStats s = analyze(nl, lib);
  std::cout << nl.name() << ": " << s.gates << " gates, " << s.inputs
            << " inputs, " << s.outputs << " outputs, " << s.dffs
            << " DFFs, depth " << s.depth << ", CPD "
            << Table::num(as_ns(s.critical_path), 2) << " ns, area "
            << Table::num(s.total_area / um2, 1) << " um^2\n";
  return 0;
}

int cmd_synth(const Args& a) {
  const Netlist nl = load_target(a.target);
  const CellLibrary lib = CellLibrary::nominal_45nm();
  DiacSynthesizer synth(nl, lib, synth_options(a));
  const SynthesisResult r = synth.synthesize();
  std::cout << "tasks: " << r.design.tree.size()
            << ", commit points: " << r.replacement.points.size()
            << " (" << r.replacement.total_bits << " bits), max exposed "
            << Table::num(as_mJ(r.replacement.max_exposed_energy), 2)
            << " mJ\n";
  const auto report = validate_design(r.design, 1.0e-3, synth.options().e_max);
  std::cout << "validation: "
            << (report.ok()
                    ? "clean"
                    : std::to_string(report.violations.size()) + " violations")
            << "\n";
  // Post-synthesis DRC: every emitted design is structurally checked.
  const verify::DrcReport drc = verify::run_design_drc(r.design);
  std::cout << "drc: " << drc.errors << " error(s), " << drc.warnings
            << " warning(s)\n";
  const std::string prefix = opt(a, "out", nl.name());
  {
    std::ofstream v(prefix + "_diac.v");
    v << generate_verilog(r.design);
  }
  {
    std::ofstream d(prefix + "_tree.dot");
    DotOptions dopt;
    dopt.energy_scale = r.design.scale;
    write_dot(d, r.design.tree, dopt);
  }
  std::cout << "wrote " << prefix << "_diac.v, " << prefix << "_tree.dot\n";
  if (!drc.clean()) return 4;
  return report.ok() ? 0 : 2;
}

// `diac check`: netlist DRC, then either equivalence against --against
// or (by default) the full synthesize -> emit -> re-import -> compare
// codegen round trip.  Exit codes: 0 clean/equivalent, 4 DRC errors,
// 5 not equivalent.  Output is byte-deterministic for fixed options.
int cmd_check(const Args& a) {
  const Netlist nl = load_target(a.target);
  const verify::DrcReport drc = verify::run_drc(nl);
  verify::write_drc_report(std::cout, drc, nl.name());
  bool drc_ok = drc.clean();
  bool equivalent = true;

  verify::EquivalenceOptions eo;
  eo.seq_cycles = std::stoi(opt(a, "seq-cycles", "8"));
  eo.seed = std::stoull(opt(a, "seed", "60247"));
  const std::string match = opt(a, "match", "name");
  if (match != "name" && match != "order") {
    throw std::runtime_error("--match must be name|order");
  }
  eo.match_ports_by_order = match == "order";

  if (a.options.count("drc-only") == 0) {
    const std::string against = opt(a, "against", "");
    if (!against.empty()) {
      const Netlist other = load_target(against);
      const verify::EquivalenceResult r = check_equivalence(nl, other, eo);
      verify::write_equivalence_result(std::cout, r);
      equivalent = r.equivalent();
    } else {
      const CellLibrary lib = CellLibrary::nominal_45nm();
      DiacSynthesizer synth(nl, lib, synth_options(a));
      const SynthesisResult r = synth.synthesize();
      const verify::DrcReport post = verify::run_design_drc(r.design);
      std::cout << "post-synthesis drc: " << post.errors << " error(s), "
                << post.warnings << " warning(s)\n";
      const verify::RoundTripResult rt =
          verify::check_codegen_roundtrip(r.design, eo);
      std::cout << "codegen round-trip: " << rt.gates_reimported
                << " gates re-imported, " << rt.nvreg_instances
                << " nvreg instance(s)\n";
      verify::write_equivalence_result(std::cout, rt.equivalence);
      drc_ok = drc_ok && post.clean();
      equivalent = rt.ok();
    }
  }
  if (!drc_ok) return 4;
  if (!equivalent) return 5;
  return 0;
}

int cmd_simulate(const Args& a) {
  const Netlist nl = load_target(a.target);
  const CellLibrary lib = CellLibrary::nominal_45nm();
  EvaluationOptions eo;
  eo.synthesis = synth_options(a);
  eo.simulator.target_instances = std::stoi(opt(a, "instances", "8"));
  eo.scenario = scenario_options(a);
  ExperimentRunner runner(threads_option(a));
  const BenchmarkResult r = evaluate_circuit(nl, lib, eo, runner);
  std::cout << scheme_detail_table(r).str();
  std::cout << "normalized PDP: ";
  for (Scheme s : kAllSchemes) {
    std::cout << to_string(s) << "=" << Table::num(r.normalized_pdp(s), 3)
              << " ";
  }
  std::cout << "\nDIAC-Optimized improvement over NV-Based: "
            << Table::pct(
                   r.improvement(Scheme::kDiacOptimized, Scheme::kNvBased))
            << "\n";
  return 0;
}

// `diac replay <circuit> --trace <file|dir>`: replay measured supply
// traces.  A single CSV prints the four-scheme detail comparison; a
// directory sweeps the whole trace library over the runner (each file
// read from disk exactly once, shared read-only across pool threads).
EvaluationOptions replay_eval_options(const Args& a) {
  return serve::replay_eval_options(a.options);
}

std::string replay_trace_arg(const Args& a) {
  return serve::replay_trace_arg(a.options);
}

// The global replay job list: the sorted CSVs of a library directory,
// or the single named file.  Parent, workers and server derive the
// identical list, which is what addresses a row's global job index.
std::vector<std::string> replay_trace_files(const std::string& trace) {
  return serve::replay_trace_files(trace);
}

void print_replay_library_report(const std::vector<BenchmarkResult>& results) {
  std::cout << trace_sweep_table(results).str();
  std::cout << "\nmean DIAC-Optimized improvement over NV-Based: "
            << Table::pct(average_improvement(results, Scheme::kDiacOptimized,
                                              Scheme::kNvBased))
            << "\n";
}

int cmd_replay(const Args& a) {
  const Netlist nl = load_target(a.target);
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const EvaluationOptions eo = replay_eval_options(a);
  const std::string trace = replay_trace_arg(a);

  const int shards = shards_option(a);
  const std::string connect = connect_option(a);
  const auto cache = cache_option(a);
  if (!connect.empty() || shards > 0 || cache != nullptr) {
    const std::vector<std::string> files = replay_trace_files(trace);
    if (files.empty()) {
      throw std::runtime_error("trace library: no .csv traces in " + trace);
    }
    std::vector<std::vector<std::string>> payloads;
    if (!connect.empty()) {
      payloads = serve::run_remote_sweep(connect, remote_request(a, "replay"),
                                         files.size());
    } else if (shards > 0) {
      std::cerr << "sharding " << files.size() << " trace(s) over " << shards
                << " worker process(es)\n";
      payloads = run_sharded_sweep(a, "replay", shards, files.size());
    } else {
      ExperimentRunner runner(threads_option(a));
      std::stringstream rows;
      run_replay_shard(rows, nl, lib, eo, files, ShardPlan{}, runner,
                       cache.get());
      payloads = dense_payloads(rows, "replay", files.size());
    }
    const std::vector<BenchmarkResult> results =
        merge_replay_shards(payloads, files, nl.logic_gate_count());
    if (std::filesystem::is_directory(trace)) {
      std::cout << nl.name() << ": " << results.size()
                << " replayed trace(s) from " << trace << "\n\n";
      print_replay_library_report(results);
    } else {
      const BenchmarkResult& r = results.front();
      std::cout << nl.name() << ": replaying " << trace << "\n\n";
      std::cout << scheme_detail_table(r).str();
      std::cout << "\nDIAC-Optimized improvement over NV-Based: "
                << Table::pct(
                       r.improvement(Scheme::kDiacOptimized, Scheme::kNvBased))
                << "\n";
    }
    return 0;
  }

  ExperimentRunner runner(threads_option(a));

  if (std::filesystem::is_directory(trace)) {
    const TraceLibrary library = load_trace_library(trace);
    const std::vector<BenchmarkResult> results =
        evaluate_trace_library(nl, lib, eo, library, runner);
    std::cout << nl.name() << ": " << results.size()
              << " replayed trace(s) from " << trace << " on "
              << runner.jobs() << " job(s)\n\n";
    print_replay_library_report(results);
    return 0;
  }

  EvaluationOptions single = eo;
  single.scenario = trace_scenario(trace);
  const BenchmarkResult r = evaluate_circuit(nl, lib, single, runner);
  std::cout << nl.name() << ": replaying " << trace << " ("
            << single.scenario.trace->segments().size() << " samples)\n\n";
  std::cout << scheme_detail_table(r).str();
  std::cout << "\nDIAC-Optimized improvement over NV-Based: "
            << Table::pct(
                   r.improvement(Scheme::kDiacOptimized, Scheme::kNvBased))
            << "\n";
  return 0;
}

int cmd_fsm(const Args& a) {
  const Netlist nl = load_target(a.target);
  const CellLibrary lib = CellLibrary::nominal_45nm();
  DiacSynthesizer synth(nl, lib, synth_options(a));
  const std::string scheme_name = opt(a, "scheme", "diac-opt");
  const Scheme scheme = scheme_name == "nv-based" ? Scheme::kNvBased
                        : scheme_name == "nv-clustering"
                            ? Scheme::kNvClustering
                        : scheme_name == "diac" ? Scheme::kDiac
                        : scheme_name == "diac-opt"
                            ? Scheme::kDiacOptimized
                            : throw std::runtime_error(
                                  "unknown scheme '" + scheme_name +
                                  "' (expected nv-based|nv-clustering|diac|"
                                  "diac-opt)");
  const auto sr = synth.synthesize_scheme(scheme);
  const ScenarioSpec scenario = scenario_options(a);
  const auto source = make_source(scenario);
  SimulatorOptions so;
  so.target_instances = std::stoi(opt(a, "instances", "4"));
  so.max_time = 40000;
  // A replayed measurement ends at its last logged sample.
  so = clamp_to_measurement(so, scenario);
  SystemSimulator sim(sr.design, *source, FsmConfig{}, so);
  const RunStats stats = sim.run();
  for (const SimEvent& e : sim.events()) {
    std::cout << "t=" << Table::num(e.t, 1) << "s " << to_string(e.kind)
              << "\n";
  }
  std::cout << "instances " << stats.instances_completed << ", energy "
            << Table::num(as_mJ(stats.energy_consumed), 1) << " mJ, writes "
            << stats.nvm_writes << ", backups " << stats.backups
            << ", saves " << stats.safe_zone_saves << ", outages "
            << stats.deep_outages << "\n";
  return stats.workload_completed ? 0 : 3;
}

EvaluationOptions mc_eval_options(const Args& a) {
  return serve::mc_eval_options(a.options);
}

int cmd_mc(const Args& a) {
  const Netlist nl = load_target(a.target);
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const EvaluationOptions eo = mc_eval_options(a);
  const int runs = serve::mc_runs(a.options);

  MonteCarloResult mc;
  const int shards = shards_option(a);
  const std::string connect = connect_option(a);
  const auto cache = cache_option(a);
  if (!connect.empty() || shards > 0 || cache != nullptr) {
    std::vector<std::vector<std::string>> payloads;
    if (!connect.empty()) {
      payloads = serve::run_remote_sweep(connect, remote_request(a, "mc"),
                                         static_cast<std::size_t>(runs));
    } else if (shards > 0) {
      std::cerr << "sharding " << runs << " run(s) over " << shards
                << " worker process(es)\n";
      payloads =
          run_sharded_sweep(a, "mc", shards, static_cast<std::size_t>(runs));
    } else {
      // --cache-dir without --shards: the cache-aware worker in-process.
      ExperimentRunner runner(threads_option(a));
      std::stringstream rows;
      run_mc_shard(rows, nl, lib, eo, runs, ShardPlan{}, runner, cache.get());
      payloads = dense_payloads(rows, "mc", static_cast<std::size_t>(runs));
    }
    mc = merge_mc_shards(payloads, nl.name(), nl.logic_gate_count());
    std::cout << nl.name() << ": " << runs << " seeded "
              << to_string(eo.scenario.kind) << " traces\n\n";
  } else {
    ExperimentRunner runner(threads_option(a));
    mc = evaluate_monte_carlo(nl, lib, eo, runs, runner);
    std::cout << nl.name() << ": " << runs << " seeded "
              << to_string(eo.scenario.kind) << " traces on " << runner.jobs()
              << " job(s)\n\n";
  }

  auto pm = [](const SampleStats& s) {
    return Table::num(s.mean, 3) + " +/- " + Table::num(s.stddev, 3);
  };
  Table t({"scheme", "normalized PDP (mean +/- sd)", "min", "max"});
  for (Scheme s : kAllSchemes) {
    const SampleStats& n = mc.normalized_pdp[static_cast<std::size_t>(s)];
    t.add_row({to_string(s), pm(n), Table::num(n.min, 3),
               Table::num(n.max, 3)});
  }
  std::cout << t.str() << "\n";
  std::cout << "DIAC vs NV-Based:          " << pm(mc.diac_vs_nv_based)
            << "\n";
  std::cout << "DIAC vs NV-Clustering:     " << pm(mc.diac_vs_nv_clustering)
            << "\n";
  std::cout << "DIAC-Optimized vs NV-Based:" << " " << pm(mc.opt_vs_nv_based)
            << "\n";
  std::cout << "DIAC-Optimized vs DIAC:    " << pm(mc.opt_vs_diac) << "\n";
  return 0;
}

// `diac search <circuit> [--grid|--random N]`: Pareto design-space
// search over policy × budget × NVM technology × sensing mode, evaluated
// on one shared harvest trace through the search engine.
SearchOptions search_options_of(const Args& a) {
  return serve::search_options(a.options);
}

std::vector<DesignPoint> search_points(const Args& a) {
  return serve::search_points(a.options);
}

int cmd_search(const Args& a) {
  const Netlist nl = load_target(a.target);
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const SearchOptions so = search_options_of(a);
  const std::vector<DesignPoint> points = search_points(a);

  SearchResult result;
  const int shards = shards_option(a);
  const std::string connect = connect_option(a);
  const auto cache = cache_option(a);
  if (!connect.empty() || shards > 0 || cache != nullptr) {
    std::vector<std::vector<std::string>> payloads;
    if (!connect.empty()) {
      payloads = serve::run_remote_sweep(connect, remote_request(a, "search"),
                                         points.size());
    } else if (shards > 0) {
      std::cerr << "sharding " << points.size() << " candidate(s) over "
                << shards << " worker process(es)\n";
      payloads = run_sharded_sweep(a, "search", shards, points.size());
    } else {
      ExperimentRunner runner(threads_option(a));
      std::stringstream rows;
      run_search_shard(rows, nl, lib, points, so, ShardPlan{}, runner,
                       cache.get());
      payloads = dense_payloads(rows, "search", points.size());
    }
    result = merge_search_shards(payloads, points, so.objectives);
    std::cout << nl.name() << ": " << points.size() << " candidate(s), "
              << result.evaluated << " evaluated, " << result.pruned
              << " pruned, front " << result.front.size() << "\n\n";
  } else {
    ExperimentRunner runner(threads_option(a));
    result = run_search(nl, lib, points, so, runner);
    std::cout << nl.name() << ": " << points.size() << " candidate(s), "
              << result.evaluated << " evaluated, " << result.pruned
              << " pruned, front " << result.front.size() << " on "
              << runner.jobs() << " thread(s)\n\n";
  }
  std::cout << search_front_table(result, so.objectives).str();

  const ObjectiveKind first = so.objectives.kinds.front();
  const CandidateResult* best = nullptr;
  if (!result.front.empty()) {
    const CandidateResult& top = result.candidates[result.front.front()];
    // An all-undefined front (nothing ever completed an instance under
    // this supply) has no meaningful "best".
    if (!std::isnan(top.costs.front())) best = &top;
  }
  if (best != nullptr) {
    std::cout << "\nbest by " << to_string(first) << ": "
              << best->point.label() << " ("
              << Table::num(objective_display(first, best->costs.front()), 3)
              << " " << objective_header(first) << ")\n";
  } else {
    std::cout << "\nbest by " << to_string(first)
              << ": none (no candidate defined this objective)\n";
  }

  const std::string csv = opt(a, "csv", "");
  if (!csv.empty()) {
    std::ofstream out(csv);
    if (!out) throw std::runtime_error("cannot write " + csv);
    write_search_csv(out, result, so.objectives);
    std::cout << "wrote " << csv << " (" << result.candidates.size()
              << " candidates)\n";
  }
  return 0;
}

// Hidden subcommand behind `--shards`: computes one shard of an mc /
// replay / search sweep and writes the versioned row file the parent
// merges.  Spawned as `diac shard-worker <target> --shard-cmd <kind>
// --shards N --shard-index i --shard-out <file> [sweep options]`; the
// sweep options are rebuilt by worker_args() and parsed by exactly the
// same helpers the visible commands use, so parent and worker can never
// disagree on what a sweep means.  Documented in docs/CLI.md; not
// listed in `diac help` (it is an internal protocol, and the shard
// addressing doubles as the multi-machine interface: run the same
// command on another host and ship the row file back).
int cmd_shard_worker(const Args& a) {
  const std::string kind = opt(a, "shard-cmd", "");
  ShardPlan plan;
  plan.shards = std::stoul(opt(a, "shards", "1"));
  plan.index = std::stoul(opt(a, "shard-index", "0"));
  plan.validate();
  const std::string out_path = opt(a, "shard-out", "");
  if (out_path.empty()) {
    throw std::runtime_error("shard-worker requires --shard-out <file>");
  }
  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot write " + out_path);

  const Netlist nl = load_target(a.target);
  const CellLibrary lib = CellLibrary::nominal_45nm();
  ExperimentRunner runner(threads_option(a));
  // Workers of one sharded sweep share the --cache-dir on disk: entry
  // publication is atomic, so concurrent stores of one key are benign.
  const auto cache = cache_option(a);

  if (kind == "mc") {
    run_mc_shard(out, nl, lib, mc_eval_options(a), serve::mc_runs(a.options),
                 plan, runner, cache.get());
  } else if (kind == "replay") {
    run_replay_shard(out, nl, lib, replay_eval_options(a),
                     replay_trace_files(replay_trace_arg(a)), plan, runner,
                     cache.get());
  } else if (kind == "search") {
    run_search_shard(out, nl, lib, search_points(a), search_options_of(a),
                     plan, runner, cache.get());
  } else {
    throw std::runtime_error("unknown --shard-cmd '" + kind +
                             "' (expected mc|replay|search)");
  }
  out.flush();
  if (!out) throw std::runtime_error("write to " + out_path + " failed");
  return 0;
}

// `diac serve --socket <path>`: the long-lived sweep server
// (docs/SERVE.md).  One process, one ExperimentRunner pool, one shared
// result cache; each connection is one mc/replay/search request.
int cmd_serve(const Args& a) {
  serve::ServerOptions so;
  so.socket_path = opt(a, "socket", "");
  if (so.socket_path.empty()) {
    throw std::runtime_error("serve requires --socket <path>");
  }
  so.cache_dir = opt(a, "cache-dir", "");
  so.cache_limit_bytes = std::stoull(opt(a, "cache-limit-mb", "1024")) << 20;
  so.threads = threads_option(a);
  return serve::serve_forever(so);
}

void print_usage(std::ostream& out) {
  out << "usage: diac <command> [target] [--option value ...]\n"
         "\n"
         "commands:\n"
         "  suite                      list the bundled benchmarks\n"
         "  stats    <circuit|file>    netlist statistics\n"
         "  check    <circuit|file>    netlist DRC + equivalence / codegen "
         "round-trip\n"
         "  synth    <circuit|file>    synthesize + export artifacts\n"
         "  simulate <circuit|file>    run the four-scheme comparison\n"
         "  mc       <circuit|file>    Monte-Carlo sweep over seeded traces\n"
         "  replay   <circuit|file>    replay measured trace CSVs "
         "(--trace <file|dir>)\n"
         "  search   <circuit|file>    Pareto design-space search "
         "(policy x budget x NVM\n"
         "                             x sensing)\n"
         "  fsm      <circuit|file>    event log of one scheme\n"
         "  serve                      long-lived sweep server on a unix "
         "socket\n"
         "                             (--socket <path>; see docs/SERVE.md)\n"
         "  version                    build provenance (git hash, compiler, "
         "build type,\n"
         "                             sanitizer); --version is an alias\n"
         "  help                       show this message\n"
         "\n"
         "<circuit|file> is a bundled benchmark name (see `diac suite`) or "
         "a path\nending in .bench / .blif / .v (structural Verilog, e.g. "
         "a synth artifact).\n"
         "\n"
         "options for synth, simulate, mc, replay, search and fsm:\n"
         "  --policy 1|2|3             tree policy (default 3; search sweeps "
         "it)\n"
         "  --budget <fraction>        commit budget as a fraction of E_MAX "
         "(default 0.25;\n"
         "                             search sweeps it)\n"
         "  --nvm mram|reram|feram|pcm NVM technology (default mram; search "
         "sweeps it)\n"
         "\n"
         "options for simulate, mc, replay, search and fsm:\n"
         "  --instances <n>            workload size (default: 8 "
         "simulate/replay, 6 mc/search,\n"
         "                             4 fsm)\n"
         "  --seed <n>                 harvest trace seed (default 60247)\n"
         "  --source constant|square|rfid|solar|fig4|trace:<path>\n"
         "                             harvest scenario (default rfid; "
         "trace:<path>\n"
         "                             replays a measured CSV)\n"
         "\n"
         "options for simulate, mc, replay and search:\n"
         "  --threads <n>              simulation threads (0 = all cores; "
         "default 0;\n"
         "                             --jobs is an alias; results are "
         "bit-identical at\n"
         "                             any thread count)\n"
         "\n"
         "options for mc, replay and search:\n"
         "  --shards <n>               split the sweep over n diac worker "
         "processes;\n"
         "                             the merged report is byte-identical "
         "for any n\n"
         "  --cache-dir <dir>          content-addressed result cache; warm "
         "reruns are\n"
         "                             byte-identical to cold ones (also a "
         "serve option)\n"
         "  --cache-limit-mb <n>       cache size cap, LRU-evicted (default "
         "1024)\n"
         "  --connect <socket>         send the sweep to a running `diac "
         "serve` instead\n"
         "                             of evaluating locally\n"
         "\n"
         "serve only:\n"
         "  --socket <path>            unix-domain socket to listen on "
         "(required)\n"
         "\n"
         "observability (any command; side-channel files only — stdout and "
         "--csv stay\nbyte-identical whether or not these flags are given):\n"
         "  --trace-out <file>         write a Chrome trace-event JSON "
         "timeline\n"
         "                             (chrome://tracing / Perfetto); with "
         "--shards the\n"
         "                             worker traces merge into one file\n"
         "  --metrics-out <file>       write counters/gauges/histograms as "
         "JSON; render\n"
         "                             with `diac stats <file>.json`\n"
         "\n"
         "mc only:\n"
         "  --runs <n>                 Monte-Carlo trace count (default 32)\n"
         "\n"
         "replay only:\n"
         "  --trace <file|dir>         trace CSV, or a directory to sweep "
         "as a library\n"
         "\n"
         "search only:\n"
         "  --grid                     sweep the full candidate grid "
         "(default)\n"
         "  --random <n>               sample n distinct grid candidates\n"
         "  --sample-seed <n>          seed of the --random draw (default "
         "53715)\n"
         "  --objectives <list>        comma list of "
         "pdp|progress|writes|completion|energy|\n"
         "                             makespan (default pdp,progress)\n"
         "  --max-time <s>             simulation horizon (default 30000)\n"
         "  --csv <file>               dump every candidate to a CSV\n"
         "\n"
         "fsm only:\n"
         "  --scheme nv-based|nv-clustering|diac|diac-opt\n"
         "                             scheme to trace (default diac-opt)\n"
         "\n"
         "synth only:\n"
         "  --out <prefix>             artifact prefix (default: circuit "
         "name)\n"
         "\n"
         "check only:\n"
         "  --against <circuit|file>   check functional equivalence against "
         "this netlist\n"
         "                             (default: synthesize + codegen "
         "round-trip)\n"
         "  --drc-only                 stop after the DRC report\n"
         "  --seq-cycles <k>           lockstep cycles per round for "
         "sequential\n"
         "                             equivalence (default 8)\n"
         "  --match name|order         primary-I/O matching (default name; "
         "the codegen\n"
         "                             round-trip always matches by order)\n"
         "exit codes for check: 0 clean/equivalent, 4 DRC errors, 5 not "
         "equivalent\n";
}

int usage() {
  print_usage(std::cerr);
  return 64;
}

int run_command(const Args& args) {
  if (args.command == "help" || args.command == "--help" ||
      args.command == "-h") {
    print_usage(std::cout);
    return 0;
  }
  if (args.command == "suite") return cmd_suite();
  if (args.command == "version" || args.command == "--version") {
    return cmd_version();
  }
  if (args.command == "serve") return cmd_serve(args);
  if (args.target.empty()) return usage();
  if (args.command == "stats") return cmd_stats(args);
  if (args.command == "check") return cmd_check(args);
  if (args.command == "synth") return cmd_synth(args);
  if (args.command == "simulate") return cmd_simulate(args);
  if (args.command == "mc") return cmd_mc(args);
  if (args.command == "replay") return cmd_replay(args);
  if (args.command == "search") return cmd_search(args);
  if (args.command == "fsm") return cmd_fsm(args);
  if (args.command == "shard-worker") return cmd_shard_worker(args);
  return usage();
}

// Writes this process's own trace/metrics files when requested — the
// single-process path, and each shard worker writing the per-shard file
// the coordinator hands it (sharded parents already merged in
// export_merged_obs).  Workers keep raw monotonic timestamps (rebase =
// false) so the coordinator can splice every process onto one timeline.
void export_local_obs(const Args& a) {
  if (g_obs_exported) return;
  const bool worker = a.command == "shard-worker";
  const std::string trace_out = opt(a, "trace-out", "");
  if (!trace_out.empty()) {
    obs::TraceMeta meta;
    std::string err;
    if (worker) {
      meta.pid = std::stoi(opt(a, "shard-index", "0"));
      meta.process_name = "shard " + opt(a, "shard-index", "0") + "/" +
                          opt(a, "shards", "1") + " (" +
                          opt(a, "shard-cmd", "?") + ")";
      meta.rebase = false;
    } else {
      meta.pid = 0;
      meta.process_name = "diac " + a.command;
    }
    if (!obs::write_trace_file(trace_out, meta, &err)) {
      throw std::runtime_error("trace-out: " + err);
    }
    if (!worker) std::cerr << "wrote trace " << trace_out << "\n";
  }
  const std::string metrics_out = opt(a, "metrics-out", "");
  if (!metrics_out.empty()) {
    obs::MetricsMeta meta;
    meta.command = worker ? opt(a, "shard-cmd", "?") : a.command;
    if (worker) meta.shard_index = std::stoi(opt(a, "shard-index", "0"));
    std::string err;
    if (!obs::write_metrics_file(metrics_out, meta, &err)) {
      throw std::runtime_error("metrics-out: " + err);
    }
    if (!worker) std::cerr << "wrote metrics " << metrics_out << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 1 && argv[0] != nullptr) g_argv0 = argv[0];
  try {
    const Args args = parse_args(argc, argv);
    if (args.options.count("trace-out") != 0) obs::set_tracing_enabled(true);
    const int rc = run_command(args);
    export_local_obs(args);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
