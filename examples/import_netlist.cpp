// Example: importing an external circuit into the DIAC flow.
//
//   $ ./import_netlist [file.blif | file.bench]
//
// Demonstrates the interchange path a user with real benchmark files
// follows: parse (BLIF or ISCAS-89 bench), clean up (constants, buffers,
// dead logic), synthesize the intermittent-aware design, and export the
// artifacts (Verilog netlist + Graphviz task tree).  Without an argument
// it writes and imports a small demo BLIF so the example is self-
// contained.
#include <fstream>
#include <iostream>

#include "diac/codegen.hpp"
#include "diac/synthesizer.hpp"
#include "netlist/analysis.hpp"
#include "netlist/bench_format.hpp"
#include "netlist/blif_format.hpp"
#include "netlist/transforms.hpp"
#include "tree/dot_export.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

constexpr const char* kDemoBlif = R"(
# 4-bit ripple incrementer with an enable, plus some removable cruft.
.model incr4
.inputs en d0 d1 d2 d3
.outputs q0 q1 q2 q3 carry
.names en one_gate unused    # dead logic: swept by cleanup
11 1
.names one_gate
1
.names d0 en q0
10 1
01 1
.names d0 en c0
11 1
.names d1 c0 q1
10 1
01 1
.names d1 c0 c1
11 1
.names d2 c1 q2
10 1
01 1
.names d2 c1 c2
11 1
.names d3 c2 q3
10 1
01 1
.names d3 c2 carry
11 1
.end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace diac;
  using namespace diac::units;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "incr4_demo.blif";
    std::ofstream demo(path);
    demo << kDemoBlif;
    std::cout << "(no input given — wrote demo circuit to " << path << ")\n";
  }

  // 1) Parse by extension.
  const bool is_blif = path.size() > 5 &&
                       path.compare(path.size() - 5, 5, ".blif") == 0;
  Netlist raw = is_blif ? parse_blif_file(path) : parse_bench_file(path);
  std::cout << "parsed " << path << ": " << raw.logic_gate_count()
            << " gates, " << raw.inputs().size() << " inputs, "
            << raw.outputs().size() << " outputs, " << raw.dffs().size()
            << " DFFs\n";

  // 2) Clean up.
  TransformStats ts;
  Netlist nl = cleanup(raw, &ts);
  std::cout << "cleanup: -" << ts.removed_dead << " dead, -"
            << ts.elided_buffers << " buffers, " << ts.folded_constants
            << " constants folded -> " << nl.logic_gate_count()
            << " gates\n";

  // 3) Synthesize.
  const CellLibrary lib = CellLibrary::nominal_45nm();
  DiacSynthesizer synth(nl, lib);
  const SynthesisResult r = synth.synthesize();
  std::cout << "DIAC design: " << r.design.tree.size() << " tasks, "
            << r.replacement.points.size() << " commit points, max exposed "
            << Table::num(as_mJ(r.replacement.max_exposed_energy), 2)
            << " mJ\n";

  // 4) Export artifacts.
  {
    std::ofstream v(nl.name() + "_diac.v");
    v << generate_verilog(r.design);
    std::cout << "wrote " << nl.name() << "_diac.v (NV-enhanced Verilog)\n";
  }
  {
    std::ofstream d(nl.name() + "_tree.dot");
    DotOptions opt;
    opt.energy_scale = r.design.scale;
    write_dot(d, r.design.tree, opt);
    std::cout << "wrote " << nl.name()
              << "_tree.dot (render with: dot -Tpdf)\n";
  }
  {
    std::ofstream b(nl.name() + "_clean.bench");
    write_bench(b, nl);
    std::cout << "wrote " << nl.name() << "_clean.bench\n";
  }
  return 0;
}
