// Example: a batteryless sensor node (the Fig. 3b system) running the
// Algorithm-1 FSM on an RFID-style supply.
//
//   $ ./sensor_node [seed] [instances]
//
// Shows the event timeline a deployment would log: state transitions of
// the sense -> compute -> transmit pipeline, power interrupts, backups,
// safe-zone recoveries and deep outages.
#include <cstdlib>
#include <iostream>

#include "diac/synthesizer.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace diac;
  using namespace diac::units;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 7;
  const int instances = argc > 2 ? std::atoi(argv[2]) : 6;

  // The node's "compute" is the b13 sensor-interface circuit — the ITC-99
  // benchmark whose documented function is exactly an interface to
  // sensors.
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const Netlist nl = build_benchmark("b13");
  DiacSynthesizer synth(nl, lib);
  const auto sr = synth.synthesize_scheme(Scheme::kDiacOptimized);

  std::cout << "=== Batteryless sensor node (b13: I/F to sensor, "
            << nl.logic_gate_count() << " gates) ===\n";
  std::cout << "scheme: " << to_string(sr.design.scheme) << ", "
            << sr.replacement.points.size() << " NVM commit points, storage "
            << "2 mF @ 5 V (25 mJ)\n\n";

  const RfidBurstSource source(seed);
  SimulatorOptions opt;
  opt.target_instances = instances;
  opt.max_time = 40000;
  SystemSimulator sim(sr.design, source, FsmConfig{}, opt);
  const RunStats stats = sim.run();

  std::cout << "--- event log ---\n";
  for (const SimEvent& e : sim.events()) {
    std::cout << "  t=" << Table::num(e.t, 1) << "s  " << to_string(e.kind)
              << "\n";
  }

  std::cout << "\n--- summary ---\n";
  std::cout << "instances completed : " << stats.instances_completed << "/"
            << instances << (stats.workload_completed ? "" : "  (TIMED OUT)")
            << "\n";
  std::cout << "wall time           : " << Table::num(stats.makespan, 1)
            << " s\n";
  std::cout << "energy consumed     : "
            << Table::num(as_mJ(stats.energy_consumed), 1) << " mJ ("
            << Table::num(as_mJ(stats.energy_harvested), 1)
            << " mJ harvested, "
            << Table::num(as_mJ(stats.energy_wasted), 1) << " mJ shunted)\n";
  std::cout << "NVM writes          : " << stats.nvm_writes << " ("
            << stats.nvm_bits_written << " bits)\n";
  std::cout << "backups/restores    : " << stats.backups << "/"
            << stats.restores << "\n";
  std::cout << "safe-zone saves     : " << stats.safe_zone_saves << "\n";
  std::cout << "deep outages        : " << stats.deep_outages << "\n";
  std::cout << "forward progress    : "
            << Table::num(stats.forward_progress(), 3) << "\n";
  std::cout << "PDP per instance    : " << Table::num(as_mJ(stats.pdp()), 2)
            << " mJ*s\n";
  return 0;
}
