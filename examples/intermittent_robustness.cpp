// Example: functional robustness under power disruption (paper SIV.A,
// "First, we validate the robustness and functionalities of a DIAC-based
// design in the presence of power disruptions").
//
//   $ ./intermittent_robustness [benchmark] [failures]
//
// Runs a circuit on the gate-level logic simulator twice: once without
// interruptions (golden), once under randomly injected power failures with
// checkpoint/rollback recovery, and shows that the outputs agree bit for
// bit while reporting how much work was re-executed.
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "netlist/logic_sim.hpp"
#include "netlist/suite.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace diac;
  const std::string name = argc > 1 ? argv[1] : "s344";
  const int target_failures = argc > 2 ? std::atoi(argv[2]) : 12;

  const Netlist nl = build_benchmark(name);
  std::cout << "=== Intermittent robustness check: " << name << " ("
            << nl.logic_gate_count() << " gates, " << nl.dffs().size()
            << " DFFs) ===\n\n";

  const int cycles = 60;
  const int checkpoint_interval = 5;
  const std::uint64_t stimulus_seed = 0xD1AC;

  auto drive = [&](LogicSimulator& sim, int cycle) {
    const auto inputs = nl.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      SplitMix64 rng(stimulus_seed ^ (i * 0x9E3779B97F4A7C15ULL) ^
                     static_cast<std::uint64_t>(cycle) * 0xBF58476D1CE4E5B9ULL);
      sim.set_input(inputs[i], rng.next());
    }
  };

  // Compile once, share across both simulators: the second construction
  // skips levelization/layout entirely and only allocates value buffers.
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  LogicSimulator golden(nl);  // compiles privately
  const auto t1 = clock::now();
  LogicSimulator intermittent(nl, golden.compiled());  // shares the compile
  const auto t2 = clock::now();
  const auto us = [](auto d) {
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  };
  std::cout << "construction: compile+build " << us(t1 - t0)
            << " us, shared rebuild " << us(t2 - t1) << " us ("
            << Table::num(double(us(t1 - t0)) /
                              double(us(t2 - t1) > 0 ? us(t2 - t1) : 1),
                          1)
            << "x cheaper)\n\n";

  // Golden run.
  for (int c = 0; c < cycles; ++c) {
    drive(golden, c);
    golden.step();
  }
  drive(golden, cycles);
  golden.settle();

  // Intermittent run: inject failures; each rolls back to the last
  // checkpoint (cycle index + DFF state), exactly the runtime's recovery
  // semantics.
  SplitMix64 failures(0xFA11);
  int cycle = 0;
  int injected = 0;
  int reexecuted = 0;
  std::pair<int, std::vector<Word>> checkpoint{0, intermittent.state()};
  while (cycle < cycles) {
    if (injected < target_failures && failures.chance(0.18)) {
      ++injected;
      reexecuted += cycle - checkpoint.first;
      std::cout << "  power failure at cycle " << cycle
                << " -> rollback to checkpoint @" << checkpoint.first << "\n";
      intermittent.set_state(checkpoint.second);
      cycle = checkpoint.first;
      continue;
    }
    drive(intermittent, cycle);
    intermittent.step();
    ++cycle;
    if (cycle % checkpoint_interval == 0) {
      checkpoint = {cycle, intermittent.state()};
    }
  }
  drive(intermittent, cycles);
  intermittent.settle();

  const bool match = intermittent.fingerprint() == golden.fingerprint();
  std::cout << "\nfailures injected   : " << injected << "\n";
  std::cout << "cycles re-executed  : " << reexecuted << " (of " << cycles
            << " useful)\n";
  std::cout << "forward progress    : "
            << Table::num(double(cycles) / (cycles + reexecuted), 3) << "\n";
  std::cout << "outputs match golden: " << (match ? "YES" : "NO") << "\n";
  return match ? 0 : 1;
}
