// Quickstart: synthesize an intermittent-aware design with DIAC and run it
// on a bursty RFID-style energy supply.
//
//   $ ./quickstart [benchmark-name]
//
// Walks the whole pipeline: benchmark netlist -> tree generation ->
// Policy3 split/merge -> NVM insertion -> Verilog emission -> simulation
// under all four schemes -> PDP comparison.
#include <iostream>

#include "diac/codegen.hpp"
#include "metrics/pdp.hpp"
#include "metrics/report.hpp"
#include "netlist/analysis.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace diac;
  using namespace diac::units;

  const std::string name = argc > 1 ? argv[1] : "s1238";
  const BenchmarkSpec& spec = benchmark_spec(name);
  const CellLibrary lib = CellLibrary::nominal_45nm();

  std::cout << "=== DIAC quickstart: " << spec.name << " ("
            << spec.function_class << ", " << spec.gate_count << " gates, "
            << to_string(spec.suite) << ") ===\n\n";

  // 1) Build the benchmark netlist (structurally synthesized at the
  //    paper's gate count).
  const Netlist nl = build_benchmark(spec);
  const NetlistStats ns = analyze(nl, lib);
  std::cout << "netlist: " << ns.gates << " gates, " << ns.inputs
            << " inputs, " << ns.outputs << " outputs, " << ns.dffs
            << " DFFs, depth " << ns.depth << ", CPD "
            << as_ns(ns.critical_path) << " ns\n";

  // 2) Synthesize the DIAC design (Policy3 + NVM insertion).
  DiacSynthesizer synth(nl, lib);
  const SynthesisResult diac = synth.synthesize();
  std::cout << "DIAC tree: " << diac.design.tree.size() << " tasks, "
            << diac.replacement.points.size() << " NVM commit points, "
            << diac.replacement.total_bits << " bits, max exposed energy "
            << as_mJ(diac.replacement.max_exposed_energy) << " mJ\n";

  // 3) Validate and emit HDL.
  const auto report =
      validate_design(diac.design, 50.0 * us, synth.options().e_max);
  std::cout << "validation: "
            << (report.ok() ? "clean"
                            : std::to_string(report.violations.size()) +
                                  " violations")
            << "\n";
  const std::string verilog = generate_verilog(diac.design);
  std::cout << "generated Verilog: " << verilog.size() << " bytes (module "
            << nl.name() << ")\n\n";

  // 4) Simulate all four schemes on the same harvest trace.
  EvaluationOptions opts;
  opts.simulator.target_instances = 8;
  const BenchmarkResult result = evaluate_circuit(nl, lib, opts);

  std::cout << scheme_detail_table(result).str() << "\n";
  std::cout << "normalized PDP (NV-Based = 1.0):\n";
  for (Scheme s : kAllSchemes) {
    std::cout << "  " << to_string(s) << ": "
              << Table::num(result.normalized_pdp(s), 3) << "\n";
  }
  std::cout << "\nDIAC-Optimized improves PDP by "
            << Table::pct(
                   result.improvement(Scheme::kDiacOptimized, Scheme::kNvBased))
            << " over NV-Based\n";
  return 0;
}
