// Example: design-space exploration with DIAC.
//
//   $ ./design_space [benchmark]
//
// This is the "Design Exploration" of the paper's title as a user would
// drive it — now a thin client of the src/search/ subsystem: enumerate
// the candidate grid (policy × commit budget × NVM technology × sensing
// mode), let the SearchEngine synthesize each candidate once, evaluate
// everything on one shared harvest trace over an ExperimentRunner, and
// print the ranked Pareto front (PDP vs forward progress).  Results are
// bit-identical at any thread count, and an all-incomplete sweep reports
// "none" instead of a garbage best (the ParetoFront's NaN-safe
// comparators replace the old hand-rolled best_pdp = 0 scan).
#include <cmath>
#include <iostream>
#include <vector>

#include "metrics/report.hpp"
#include "netlist/suite.hpp"
#include "search/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace diac;
  using namespace diac::units;

  const std::string name = argc > 1 ? argv[1] : "b12";
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const Netlist nl = build_benchmark(name);

  std::cout << "=== DIAC design-space exploration: " << name << " ("
            << nl.logic_gate_count() << " gates) ===\n\n";

  SearchOptions options;
  options.scenario.seed = 0xD5E;  // every candidate sees the same RFID trace
  options.simulator.target_instances = 6;
  options.simulator.max_time = 30000;
  options.objectives = SearchObjectives::defaults();  // pdp, progress

  const CandidateSpace space;  // default axes: 3 x 3 x 4 x 1 x 2 = 72
  ExperimentRunner runner;     // all cores
  const SearchResult result =
      run_search(nl, lib, space.grid(), options, runner);

  std::cout << space.size() << " candidates, " << result.evaluated
            << " evaluated, " << result.pruned << " pruned by synthesis-time "
            << "bounds, Pareto front " << result.front.size() << "\n\n";
  std::cout << search_front_table(result, options.objectives).str() << "\n";

  // "Best" = the front head by PDP.  When nothing ever completed an
  // instance under this supply, the PDP objective is NaN everywhere and
  // there is no best design.
  if (!result.front.empty() &&
      !std::isnan(result.candidates[result.front.front()].costs.front())) {
    const CandidateResult& best = result.candidates[result.front.front()];
    std::cout << "best completed design: " << best.point.label() << " (PDP "
              << Table::num(as_mJ(best.stats.pdp()), 1) << " mJ*s)\n";
  } else {
    std::cout << "best completed design: none (no candidate completed an "
              << "instance)\n";
  }
  return 0;
}
