// Example: design-space exploration with DIAC.
//
//   $ ./design_space [benchmark]
//
// This is the "Design Exploration" of the paper's title as a user would
// drive it: sweep the policy, the commit budget and the NVM technology for
// one circuit, simulate each candidate design on the same harvest trace,
// and print the Pareto view (PDP vs resiliency/forward progress).  The
// candidates are independent, so the whole sweep fans out over an
// ExperimentRunner — results are deterministic at any thread count.
#include <iostream>
#include <vector>

#include "diac/synthesizer.hpp"
#include "exp/experiment.hpp"
#include "netlist/suite.hpp"
#include "runtime/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace diac;
  using namespace diac::units;

  const std::string name = argc > 1 ? argv[1] : "b12";
  const CellLibrary lib = CellLibrary::nominal_45nm();
  const Netlist nl = build_benchmark(name);

  ScenarioSpec scenario;  // every candidate sees the same RFID trace
  scenario.seed = 0xD5E;

  std::cout << "=== DIAC design-space exploration: " << name << " ("
            << nl.logic_gate_count() << " gates) ===\n\n";

  struct Candidate {
    PolicyKind policy;
    double budget_fraction;
    NvmTechnology tech;
  };
  std::vector<Candidate> candidates;
  for (PolicyKind p : {PolicyKind::kPolicy1, PolicyKind::kPolicy2,
                       PolicyKind::kPolicy3}) {
    for (double b : {0.10, 0.25, 0.50}) {
      candidates.push_back({p, b, NvmTechnology::kMram});
    }
  }
  candidates.push_back({PolicyKind::kPolicy3, 0.25, NvmTechnology::kReram});
  candidates.push_back({PolicyKind::kPolicy3, 0.25, NvmTechnology::kFeram});

  // Synthesize every candidate (cheap), then fan the simulations out.
  std::vector<SynthesisResult> synthesized;
  synthesized.reserve(candidates.size());
  std::vector<SimulationJob> jobs;
  SimulatorOptions opt;
  opt.target_instances = 6;
  opt.max_time = 30000;
  for (const Candidate& c : candidates) {
    SynthesisOptions so;
    so.policy = c.policy;
    so.budget_fraction = c.budget_fraction;
    so.technology = c.tech;
    synthesized.push_back(
        DiacSynthesizer(nl, lib, so).synthesize_scheme(Scheme::kDiacOptimized));
  }
  // Every candidate sees the same trace: materialize it once and share.
  const auto source =
      make_source(clamp_scenario_horizon(scenario, opt.max_time));
  for (const SynthesisResult& sr : synthesized) {
    jobs.push_back({&sr.design, scenario, source.get(), FsmConfig{}, opt});
  }
  ExperimentRunner runner;  // all cores
  const std::vector<RunStats> results = run_simulations(runner, jobs);

  Table t({"policy", "budget", "NVM", "tasks", "commits", "PDP [mJ*s]",
           "fwd progress", "writes", "done"});
  double best_pdp = 0;
  std::string best;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    const SynthesisResult& sr = synthesized[i];
    const RunStats& s = results[i];
    const std::string label = std::string(to_string(c.policy)) + "/" +
                              Table::num(c.budget_fraction, 2) + "/" +
                              to_string(c.tech);
    if (s.workload_completed && (best.empty() || s.pdp() < best_pdp)) {
      best_pdp = s.pdp();
      best = label;
    }
    t.add_row({to_string(c.policy), Table::num(c.budget_fraction, 2),
               to_string(c.tech), std::to_string(sr.design.tree.size()),
               std::to_string(sr.replacement.points.size()),
               Table::num(as_mJ(s.pdp()), 1),
               Table::num(s.forward_progress(), 3),
               std::to_string(s.nvm_writes),
               s.workload_completed ? "yes" : "no"});
  }
  std::cout << t.str() << "\n";
  std::cout << "best completed design: " << best << " (PDP "
            << Table::num(as_mJ(best_pdp), 1) << " mJ*s)\n";
  return 0;
}
